"""Chapter 2's quantitative claims, reproduced on the baseline switches.

1. A FIFO input-queued crossbar is HOL-limited to ~58.6% under saturated
   uniform traffic; VOQ + iSLIP recovers ~100% (section 2.2.2 / McKeown).
2. iSLIP converges in a few iterations (the "quickly converge on a
   conflict-free match" property).
3. Variable-length packets across the backplane cap utilization near
   60%; fixed-size cells restore ~100% (the "why fixed length packets"
   argument).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cells import CellModeBackplane, PacketModeBackplane
from repro.baselines.cellsim import FIFOSwitch, OutputQueuedSwitch, VOQSwitch
from repro.baselines.schedulers import PIMScheduler, iSLIPScheduler
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult
from repro.traffic.sizes import BimodalSizes


def run_hol_voq(
    ports=(4, 8, 16), slots: int = 20000, warmup: int = 2000, seed: int = 1
) -> ExperimentResult:
    """FIFO vs VOQ/iSLIP vs ideal OQ at saturation."""
    result = ExperimentResult(
        name="claim_hol_voq",
        description="Saturated uniform throughput: FIFO (HOL) vs VOQ/iSLIP vs OQ",
    )
    for n in ports:
        rng = np.random.default_rng(seed)
        fifo = FIFOSwitch(n, rng).run(slots, load=1.0, warmup=warmup)
        rng = np.random.default_rng(seed)
        voq = VOQSwitch(n, iSLIPScheduler(n, iterations=4), rng).run(
            slots, load=1.0, warmup=warmup
        )
        rng = np.random.default_rng(seed)
        oq = OutputQueuedSwitch(n, rng).run(slots, load=1.0, warmup=warmup)
        result.add(
            f"fifo_N{n}",
            fifo.throughput,
            paperdata.HOL_THROUGHPUT if n >= 16 else None,
        )
        result.add(f"voq_islip_N{n}", voq.throughput, paperdata.VOQ_THROUGHPUT)
        result.add(f"output_queued_N{n}", oq.throughput, 1.0)
    result.notes = (
        "HOL limit 2-sqrt(2)~=0.586 is the large-N asymptote; small N "
        "saturates a little higher (N=4 ~0.66)."
    )
    return result


def run_islip_iterations(
    n: int = 16, slots: int = 15000, warmup: int = 1500, seed: int = 2
) -> ExperimentResult:
    """Throughput and delay vs scheduler iterations (iSLIP vs PIM)."""
    result = ExperimentResult(
        name="claim_islip_iters",
        description="iSLIP/PIM convergence with iterations (N=16, load 0.95)",
    )
    for iterations in (1, 2, 4):
        rng = np.random.default_rng(seed)
        islip = VOQSwitch(n, iSLIPScheduler(n, iterations), rng).run(
            slots, load=0.95, warmup=warmup
        )
        rng = np.random.default_rng(seed)
        pim = VOQSwitch(n, PIMScheduler(n, iterations, np.random.default_rng(seed)), rng).run(
            slots, load=0.95, warmup=warmup
        )
        result.add(f"islip_{iterations}it_delay", islip.mean_delay)
        result.add(f"pim_{iterations}it_delay", pim.mean_delay)
        result.add(f"islip_{iterations}it_tput", islip.throughput)
    return result


def run_cells_vs_packets(
    n: int = 8, slots: int = 30000, seed: int = 2
) -> ExperimentResult:
    """Fixed cells vs variable-length packets across the backplane."""
    result = ExperimentResult(
        name="claim_cells",
        description="Backplane utilization: fixed cells vs variable-length packets",
    )
    rng = np.random.default_rng(seed)
    sizes = BimodalSizes(rng, small=64, large=1024, p_small=0.5)
    cell = CellModeBackplane(n, sizes, rng, iSLIPScheduler(n, iterations=4))
    cell.BACKLOG = 16
    cell_res = cell.run(slots)
    rng = np.random.default_rng(seed)
    sizes = BimodalSizes(rng, small=64, large=1024, p_small=0.5)
    pkt_res = PacketModeBackplane(n, sizes, rng).run(slots)
    result.add("cell_mode_util", cell_res.utilization, paperdata.CELL_UTIL)
    result.add(
        "variable_length_util", pkt_res.utilization, paperdata.VARIABLE_LENGTH_UTIL
    )
    result.add(
        "cell_over_variable",
        cell_res.utilization / pkt_res.utilization if pkt_res.utilization else 0.0,
    )
    result.notes = (
        "the thesis (quoting McKeown) puts variable-length scheduling at "
        "~60% of fabric bandwidth and cells at up to 100%."
    )
    return result
