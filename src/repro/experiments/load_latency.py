"""Latency vs. offered load: the router's queueing characteristic.

Not a figure in the thesis (its evaluation is saturated-throughput
only), but the standard router characterization its edge-router framing
implies, and the natural consumer of the line-card machinery: uniform
traffic paced at a fraction of line rate, measuring delivered goodput,
mean and p99 latency, and where line-card drops begin.  The knee must
sit at the fabric's measured average capacity -- that consistency is
asserted by the benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.raw import costs
from repro.router.router import RawRouter
from repro.traffic.arrivals import Saturated
from repro.traffic.patterns import UniformDestinations
from repro.traffic.sizes import FixedSize
from repro.traffic.workload import PacketFactory, Workload

#: Per-port line rate of the model: one 32-bit word per cycle at 250 MHz.
LINE_RATE_GBPS = costs.WORD_BITS * costs.CLOCK_HZ / 1e9


def run(
    loads=(0.2, 0.4, 0.6, 0.8, 0.95),
    size_bytes: int = 512,
    packets_per_port: int = 400,
    seed: int = 42,
) -> ExperimentResult:
    result = ExperimentResult(
        name="load_latency",
        description=f"Latency vs offered load, {size_bytes}B uniform traffic",
    )
    knee_gbps = None
    for load in loads:
        rng = np.random.default_rng(seed)
        router = RawRouter(warmup_cycles=20_000)
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True),
            FixedSize(size_bytes),
            Saturated(),
        )
        factory = PacketFactory(4, rng)
        sources = router.attach_linecards(
            workload,
            factory,
            offered_load=load,
            rng=rng,
            packets_per_port=packets_per_port,
        )
        res = router.run(target_packets=int(packets_per_port * 4 * 0.9))
        lat = res.latency_summary()
        offered = sum(s.sent for s in sources)
        drops = sum(s.dropped for s in sources)
        result.add(f"gbps_at_{load}", res.gbps)
        result.add(f"mean_us_at_{load}", lat.get("mean_us", float("nan")))
        result.add(f"p99_us_at_{load}", lat.get("p99_us", float("nan")))
        result.add(f"drop_pct_at_{load}", 100.0 * drops / offered if offered else 0.0)
        knee_gbps = res.gbps
    # Consistency: the saturating load's goodput approaches the fabric's
    # measured average capacity for this packet size.
    from repro.core.fabricsim import FabricSimulator, saturated_uniform

    rng = np.random.default_rng(seed)
    fabric_cap = FabricSimulator().run(
        saturated_uniform(costs.bytes_to_words(size_bytes), rng, exclude_self=True),
        quanta=3000,
        warmup_quanta=200,
    ).gbps
    result.add("fabric_avg_capacity_gbps", fabric_cap)
    result.add("top_load_goodput_over_capacity", (knee_gbps or 0.0) / fabric_cap)
    result.notes = (
        "latency stays near store-and-forward until offered load crosses "
        "the fabric's average capacity, then input queues fill and the "
        "external buffer starts dropping (the thesis's section 4.4 "
        "assumption: FIFO delivery, drops external to the chip)."
    )
    return result
