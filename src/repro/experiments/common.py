"""Shared experiment-result plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.viz.tables import format_comparison, format_table


@dataclass
class ExperimentResult:
    """Rows of measured-vs-paper values plus free-form notes."""

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, label: str, measured: Any, paper: Any = None, **extra: Any) -> None:
        row = {"label": label, "measured": measured, "paper": paper}
        row.update(extra)
        self.rows.append(row)

    def row(self, label: str) -> Dict[str, Any]:
        for row in self.rows:
            if row["label"] == label:
                return row
        raise KeyError(f"{self.name}: no row {label!r}")

    def measured(self, label: str) -> Any:
        return self.row(label)["measured"]

    def ratio(self, label: str) -> Optional[float]:
        row = self.row(label)
        paper = row.get("paper")
        if isinstance(paper, (int, float)) and paper:
            return row["measured"] / paper
        return None

    def to_text(self) -> str:
        body = format_comparison(self.rows, title=f"[{self.name}] {self.description}")
        if self.notes:
            body += f"\n{self.notes}"
        return body

    def extra_table(self, columns: List[str]) -> str:
        rows = [[r["label"]] + [r.get(c, "") for c in columns] for r in self.rows]
        return format_table(["case"] + columns, rows)
