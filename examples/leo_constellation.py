#!/usr/bin/env python
"""Routing in a LEO satellite constellation with Raw routers on board.

Thesis section 8.8 proposes general-purpose Raw routers as the switching
element of low-earth-orbit constellations (Iridium-style), where memory
budgets and per-hop forwarding overheads are the binding constraints.
This demo builds an Iridium-like 6x11 walker constellation as a graph
(four inter-satellite links per bird = exactly the thesis's 4-port
router), routes ground-to-ground flows over shortest paths, and prices
each hop with the Raw router's measured per-packet forwarding latency
plus speed-of-light ISL delays.

Run:  python examples/leo_constellation.py
"""

import math

import networkx as nx
import numpy as np

from repro.core.phases import quantum_cycles
from repro.raw import costs
from repro.viz.tables import format_table

# Iridium-like geometry.
PLANES = 6
SATS_PER_PLANE = 11
ALTITUDE_KM = 780
EARTH_RADIUS_KM = 6371
C_KM_PER_S = 299_792


def build_constellation() -> nx.Graph:
    """6 planes x 11 satellites; intra-plane + inter-plane ISLs.

    Every satellite has exactly four links (up/down in its plane,
    left/right to neighbor planes) -- a 4-port router per bird, the
    configuration the thesis's prototype provides.
    """
    g = nx.Graph()
    orbit_radius = EARTH_RADIUS_KM + ALTITUDE_KM
    for p in range(PLANES):
        for s in range(SATS_PER_PLANE):
            # Positions on a sphere: planes spread in longitude, sats in phase.
            lon = math.pi * p / PLANES
            phase = 2 * math.pi * s / SATS_PER_PLANE + (math.pi / SATS_PER_PLANE) * p
            x = orbit_radius * math.cos(phase) * math.cos(lon)
            y = orbit_radius * math.cos(phase) * math.sin(lon)
            z = orbit_radius * math.sin(phase)
            g.add_node((p, s), pos=(x, y, z))

    def dist(a, b):
        ax, ay, az = g.nodes[a]["pos"]
        bx, by, bz = g.nodes[b]["pos"]
        return math.dist((ax, ay, az), (bx, by, bz))

    for p in range(PLANES):
        for s in range(SATS_PER_PLANE):
            a = (p, s)
            intra = (p, (s + 1) % SATS_PER_PLANE)
            g.add_edge(a, intra, km=dist(a, intra))
            if p + 1 < PLANES:  # seam planes counter-rotate: no ISL there
                inter = (p + 1, s)
                g.add_edge(a, inter, km=dist(a, inter))
    return g


def hop_forwarding_us(packet_bytes: int) -> float:
    """Per-hop forwarding latency of the Raw router (phase model):
    ingress + one crossbar quantum + egress streaming."""
    words = costs.bytes_to_words(packet_bytes)
    cycles = (
        words  # ingress streaming
        + costs.INGRESS_HEADER_CYCLES
        + quantum_cycles(words, expansion=2)  # crossbar
        + words  # egress streaming
    )
    return cycles / costs.CLOCK_HZ * 1e6


def main() -> None:
    g = build_constellation()
    degrees = [d for _, d in g.degree()]
    print(
        f"constellation: {g.number_of_nodes()} satellites, "
        f"{g.number_of_edges()} ISLs, degree min/max = "
        f"{min(degrees)}/{max(degrees)} (4-port Raw router per satellite)"
    )

    flows = [
        ("Boston -> London", (0, 0), (2, 1)),
        ("Boston -> Tokyo", (0, 0), (4, 5)),
        ("Sydney -> Paris", (5, 8), (2, 1)),
        ("Antipodal worst case", (0, 0), (3, 5)),
    ]
    rows = []
    for label, src, dst in flows:
        path = nx.shortest_path(g, src, dst, weight="km")
        km = sum(g.edges[a, b]["km"] for a, b in zip(path, path[1:]))
        prop_ms = km / C_KM_PER_S * 1e3
        hops = len(path) - 1
        fwd_ms = hops * hop_forwarding_us(1024) / 1e3
        rows.append(
            [label, hops, f"{km:.0f}", f"{prop_ms:.2f}", f"{fwd_ms:.3f}",
             f"{prop_ms + fwd_ms:.2f}"]
        )
    print(
        format_table(
            ["flow", "hops", "ISL km", "propagation ms", "forwarding ms", "total ms"],
            rows,
            title="\nground-to-ground latency over the constellation (1024B packets)",
        )
    )
    us = hop_forwarding_us(1024)
    print(
        f"\nper-hop Raw forwarding = {us:.2f} us -- two orders of magnitude "
        "under the ISL propagation delays, supporting the thesis's claim "
        "that a general-purpose single-chip router suffices on orbit."
    )


if __name__ == "__main__":
    main()
