#!/usr/bin/env python
"""Edge router demo: real routing table, paced line cards, a load sweep.

This is the scenario the thesis targets (a 4-port *edge* router): a
routing table with realistic prefixes, packets arriving from line cards
at a configurable fraction of line rate, and the questions an operator
asks -- delivered throughput, latency percentiles, and where drops start.

Run:  python examples/edge_router_demo.py
"""

import numpy as np

from repro.ip import Prefix, RoutingTable, random_prefixes
from repro.router import RawRouter
from repro.traffic import (
    FixedSize,
    IMix,
    PacketFactory,
    Saturated,
    UniformDestinations,
    Workload,
)
from repro.viz.tables import format_table


def build_edge_table(rng: np.random.Generator, num_ports: int = 4) -> RoutingTable:
    """A small-ISP style table: a default split plus specific customers."""
    table = RoutingTable.uniform_split(num_ports)
    for i, prefix in enumerate(random_prefixes(64, rng, min_len=16, max_len=24)):
        table.add_route(prefix, i % num_ports)
    return table


def run_at_load(load: float, rng: np.random.Generator, packets_per_port: int = 300):
    table = build_edge_table(rng)
    router = RawRouter(table=table, warmup_cycles=20_000)
    workload = Workload(
        pattern=UniformDestinations(4, rng, exclude_self=True),
        sizes=FixedSize(512),
        arrivals=Saturated(),  # the line card paces; arrivals gate nothing
    )
    factory = PacketFactory(4, rng)
    sources = router.attach_linecards(
        workload, factory, offered_load=load, rng=rng, packets_per_port=packets_per_port
    )
    result = router.run(target_packets=int(packets_per_port * 4 * 0.9))
    lat = result.latency_summary()
    drops = sum(s.dropped for s in sources)
    offered = sum(s.sent for s in sources)
    return {
        "load": load,
        "gbps": result.gbps,
        "mean_us": lat.get("mean_us", float("nan")),
        "p99_us": lat.get("p99_us", float("nan")),
        "drop_pct": 100.0 * drops / offered if offered else 0.0,
    }


def main() -> None:
    rows = []
    for load in (0.2, 0.4, 0.6, 0.8, 0.95):
        rng = np.random.default_rng(42)
        r = run_at_load(load, rng)
        rows.append(
            [f"{r['load']:.2f}", f"{r['gbps']:.2f}", f"{r['mean_us']:.2f}",
             f"{r['p99_us']:.2f}", f"{r['drop_pct']:.1f}%"]
        )
    print(
        format_table(
            ["offered load", "Gbps", "mean lat (us)", "p99 lat (us)", "drops"],
            rows,
            title="4-port Raw edge router, 512B packets, uniform traffic",
        )
    )
    print(
        "\nlatency stays flat until the fabric's saturation point, then "
        "queueing takes over -- the input-queued FIFO behaviour the thesis "
        "accepts for an edge router (section 4.4)."
    )


if __name__ == "__main__":
    main()
