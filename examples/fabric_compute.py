#!/usr/bin/env python
"""Computation in the switch fabric (thesis section 8.3).

Encrypts payloads *inside* the Rotating Crossbar as they stream between
ports: the header's computation bits select an XOR stream cipher applied
by the Crossbar Processors at two instructions per word.  The demo
verifies the transform end to end through the full router model (egress
payloads differ from ingress, and decrypting restores them), then prints
what each in-fabric service costs in throughput.

Run:  python examples/fabric_compute.py
"""

import numpy as np

from repro.core.compute import ByteSwap, Identity, RunningChecksum, XorCipher
from repro.experiments import compute_ext
from repro.ip.packet import IPv4Packet
from repro.router import RawRouter
from repro.traffic import FixedPermutation, FixedSize, PacketFactory, Saturated, Workload


def functional_demo() -> None:
    print("=== in-fabric encryption through the full router ===")
    cipher = XorCipher(seed=0xDEADBEEF)
    rng = np.random.default_rng(1)
    router = RawRouter(transform=cipher, warmup_cycles=0)
    workload = Workload(FixedPermutation.shift(4, 1), FixedSize(256), Saturated())
    factory = PacketFactory(4, rng)

    # Track every packet and its plaintext; the fabric mutates payloads
    # in place as they cross the crossbar.
    tracked = []
    real_make = factory.make

    def tracking_make(input_port, output_port, size_bytes):
        pkt = real_make(input_port, output_port, size_bytes)
        tracked.append((pkt, tuple(pkt.payload)))
        return pkt

    factory.make = tracking_make
    router.attach_saturated(workload, factory)
    result = router.run(target_packets=40)

    delivered = [(p, plain) for p, plain in tracked if p.departure_cycle >= 0]
    encrypted = sum(tuple(p.payload) != plain for p, plain in delivered)
    restored = sum(
        tuple(cipher.apply(p.payload)) == plain for p, plain in delivered
    )
    print(f"forwarded {result.packets} packets at {result.gbps:.2f} Gbps with cipher on")
    print(f"payloads transformed in-fabric : {encrypted}/{len(delivered)}")
    print(f"decrypt restores plaintext     : {restored}/{len(delivered)}\n")


def cost_table() -> None:
    print("=== throughput cost of each in-fabric service ===")
    res = compute_ext.run(quanta=1500)
    print(res.to_text())


if __name__ == "__main__":
    functional_demo()
    cost_table()
