#!/usr/bin/env python
"""Quickstart: the Raw router in ~60 lines.

Builds the 4-port single-chip router of the thesis, saturates it with
1,024-byte packets on a conflict-free pattern, and prints the headline
numbers (the thesis reports 26.9 Gbps / 3.3 Mpps peak), then shows the
Rotating Crossbar making one allocation decision and the compile-time
scheduler's view of the configuration space.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Allocator, RingGeometry
from repro.core.config_space import ConfigurationSpace
from repro.router import RawRouter
from repro.traffic import FixedPermutation, FixedSize, PacketFactory, Saturated, Workload


def main() -> None:
    # --- 1. A saturated peak-throughput run --------------------------------
    rng = np.random.default_rng(0)
    router = RawRouter(warmup_cycles=30_000)
    workload = Workload(
        pattern=FixedPermutation.shift(4, 2),  # port i -> port (i+2) % 4
        sizes=FixedSize(1024),
        arrivals=Saturated(),
    )
    router.attach_saturated(workload, PacketFactory(4, rng))
    result = router.run(max_cycles=300_000)
    print(f"peak throughput : {result.gbps:6.2f} Gbps   (thesis: 26.9)")
    print(f"peak packet rate: {result.mpps:6.2f} Mpps   (thesis: 3.3)")
    lat = result.latency_summary()
    print(f"mean latency    : {lat['mean_us']:6.2f} us over {int(lat['count'])} packets")

    # --- 2. One Rotating Crossbar decision (thesis Fig 5-1) ----------------
    ring = RingGeometry(4)
    alloc = Allocator(ring).allocate(requests=[2, 3, 0, 1], token=0)
    print("\nFig 5-1 allocation (token at port 0):")
    for src in range(4):
        grant = alloc.grants[src]
        print(
            f"  input {src} -> output {grant.dst}: {grant.path.direction:>3s}, "
            f"{grant.path.hops} ring hop(s)"
        )

    # --- 3. The configuration space (thesis chapter 6) ---------------------
    space = ConfigurationSpace(ring)
    minimized = space.minimize()
    print(
        f"\nconfiguration space: {minimized.global_size} global configs "
        f"-> {minimized.minimized_size} per-tile configs "
        f"({minimized.reduction_factor:.1f}x reduction; thesis: 2,500 -> 32, 78x)"
    )


if __name__ == "__main__":
    main()
