#!/usr/bin/env python
"""QoS weighted tokens and fabric multicast (thesis sections 5.4/8.6/8.7).

Part 1 gives port 0 a 4x token weight and shows its share of a contended
output moving from 25% to ~57% while no one starves.  Part 2 routes a
multicast packet through the Rotating Crossbar with fanout splitting and
compares against sending unicast copies.

Run:  python examples/qos_and_multicast.py
"""

import numpy as np

from repro.core import (
    FabricSimulator,
    MulticastAllocator,
    RingGeometry,
    RotatingToken,
    WeightedToken,
)
from repro.experiments import multicast_ext
from repro.viz.tables import format_table


def qos_demo() -> None:
    print("=== weighted-token QoS: every input floods output 0 ===")
    rows = []
    for label, token in (
        ("plain token", RotatingToken(4)),
        ("weights 4:1:1:1", WeightedToken([4, 1, 1, 1])),
    ):
        sim = FabricSimulator(token=token)
        stats = sim.run(lambda port: (0, 128), quanta=4000)
        total = sum(stats.per_port_words)
        shares = [w / total for w in stats.per_port_words]
        rows.append([label] + [f"{s * 100:.1f}%" for s in shares])
    print(format_table(["policy", "port0", "port1", "port2", "port3"], rows))
    print("the weighted token reallocates the contended output's bandwidth")
    print("without code changes in the fabric -- only the rotation schedule.\n")


def multicast_demo() -> None:
    print("=== fabric multicast with fanout splitting ===")
    ring = RingGeometry(4)
    allocator = MulticastAllocator(ring)
    alloc = allocator.allocate(
        [frozenset({1, 2, 3}), None, frozenset({0}), None], token=0
    )
    for src, grant in sorted(alloc.grants.items()):
        dirs = ", ".join(f"{p.direction}({p.hops} hops)" for p in grant.paths) or "direct"
        print(
            f"  input {src}: serves outputs {sorted(grant.served)} via {dirs}"
        )
    print(f"  conflict-free: {alloc.is_conflict_free()}")
    res = multicast_ext.run(fanouts=(2, 3), quanta=2000)
    print()
    print(res.to_text())


if __name__ == "__main__":
    qos_demo()
    multicast_demo()
