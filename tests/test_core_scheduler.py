"""Compile-time scheduler: passes, jump table, codegen, IMEM fit."""

import pytest

from repro.core.allocator import Allocator
from repro.core.ring import RingGeometry
from repro.core.scheduler import (
    CompileTimeScheduler,
    TilePortMap,
    _direction_between,
    default_port_maps,
)
from repro.raw import costs
from repro.raw.layout import CROSSBAR_RING, Direction, ROUTER_LAYOUT


@pytest.fixture(scope="module")
def schedule():
    return CompileTimeScheduler(RingGeometry(4)).compile()


class TestPortMaps:
    def test_direction_between(self):
        assert _direction_between(5, 6) is Direction.EAST
        assert _direction_between(5, 1) is Direction.NORTH
        assert _direction_between(5, 9) is Direction.SOUTH
        assert _direction_between(5, 4) is Direction.WEST
        with pytest.raises(ValueError):
            _direction_between(5, 10)

    def test_default_maps_cover_ring(self):
        maps = default_port_maps()
        assert [m.tile for m in maps] == list(CROSSBAR_RING)
        for m, layout in zip(maps, ROUTER_LAYOUT):
            assert m.ingress_dir is _direction_between(m.tile, layout.ingress)
            assert m.egress_dir is _direction_between(m.tile, layout.egress)

    def test_client_server_ports(self):
        pm = default_port_maps()[0]  # tile 5
        assert pm.client_port("in") == "$cWi"
        assert pm.server_port("out") == "$cNo"
        assert pm.server_port("cwnext") == "$cEo"
        assert pm.server_port("ccwnext") == "$cSo"
        # cw words arrive from the counterclockwise neighbor (tile 9).
        assert pm.client_port("cwprev") == "$cSi"
        assert pm.client_port("ccwprev") == "$cEi"
        with pytest.raises(ValueError):
            pm.client_port("bogus")
        with pytest.raises(ValueError):
            pm.server_port("bogus")


class TestJumpTable:
    def test_lookup_matches_allocator(self, schedule):
        allocator = Allocator(RingGeometry(4))
        for headers in [(2, 3, 0, 1), (0, 0, 0, 0), (None, 1, None, 3)]:
            for token in range(4):
                ids, alloc = schedule.lookup(headers, token)
                direct = allocator.allocate(headers, token)
                assert set(alloc.grants) == set(direct.grants)
                assert len(ids) == 4

    def test_complete_coverage(self, schedule):
        assert len(schedule.jump_table) == 2500
        assert len(schedule.allocations) == 2500

    def test_ids_in_range(self, schedule):
        n = schedule.minimization.minimized_size
        for ids in schedule.jump_table.values():
            assert all(0 <= i < n for i in ids)


class TestCodegen:
    def test_assembly_structure(self, schedule):
        pm = default_port_maps()[0]
        ids, _ = schedule.lookup((2, 3, 0, 1), 0)
        listing = schedule.assembly_for(ids[0], pm, quantum_words=16)
        assert listing[0].startswith("cfg")
        assert listing[-1].strip().startswith("j ")
        assert any("route" in line for line in listing)

    def test_idle_config_is_nop(self, schedule):
        ids, _ = schedule.lookup((None, None, None, None), 0)
        pm = default_port_maps()[0]
        listing = schedule.assembly_for(ids[0], pm)
        assert any("nop" in line for line in listing)

    def test_prologue_matches_expansion(self, schedule):
        # A 2-hop flow: the destination tile's code has 2 fill slots.
        ids, alloc = schedule.lookup((2, None, None, None), 0)
        cfg = schedule.config(ids[2])
        assert cfg.expansion == 2
        pm = default_port_maps()[2]
        listing = schedule.assembly_for(ids[2], pm)
        assert sum("; fill" in line for line in listing) == 2
        assert sum("; drain" in line for line in listing) == 2

    def test_port_mnemonics_valid(self, schedule):
        valid = {"$cNi", "$cSi", "$cEi", "$cWi", "$cNo", "$cSo", "$cEo", "$cWo"}
        pm = default_port_maps()[1]
        for cid in range(schedule.minimization.minimized_size):
            for line in schedule.assembly_for(cid, pm):
                for tok in line.replace(",", " ").split():
                    if tok.startswith("$c") and tok != "$csto" and tok != "$csti":
                        for part in tok.split("->"):
                            assert part in valid, line

    def test_full_listing_contains_all_configs(self, schedule):
        listing = schedule.full_listing()
        for cid in range(schedule.minimization.minimized_size):
            assert f"cfg{cid}:" in listing


class TestIMemFit:
    def test_fits_switch_memory(self, schedule):
        used = schedule.imem_words_per_tile()
        assert used <= costs.SWITCH_MEM_WORDS
        assert schedule.fits_imem()

    def test_naive_budget_would_not_fit(self, schedule):
        """The motivating arithmetic: even 4 instructions per naive
        config would overflow the 8,192-word switch memory."""
        assert 2500 * 4 > costs.SWITCH_MEM_WORDS


class TestReservePass:
    def test_reserve_is_pass1(self):
        sched = CompileTimeScheduler(RingGeometry(4))
        alloc = sched.reserve((2, 3, 0, 1), 0)
        assert alloc.num_granted == 4
