"""Examples stay runnable: import each script and exercise its pieces.

Full example runs live in the scripts themselves (minutes of wall
clock); here each one's building blocks are imported and driven at a
small scale so API drift breaks the suite, not the user.
"""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestScriptsExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "edge_router_demo",
            "qos_and_multicast",
            "fabric_compute",
            "leo_constellation",
        ],
    )
    def test_importable_with_entrypoint(self, name):
        module = load_example(name)
        entry = (
            getattr(module, "main", None)
            or getattr(module, "qos_demo", None)
            or getattr(module, "functional_demo", None)
        )
        assert callable(entry)


class TestEdgeRouterDemo:
    def test_build_edge_table(self):
        mod = load_example("edge_router_demo")
        table = mod.build_edge_table(np.random.default_rng(0))
        assert len(table) > 64  # split + customers
        assert table.lookup(0) is not None

    def test_run_at_load_small(self):
        mod = load_example("edge_router_demo")
        # Enough packets that deliveries outlast the 20k-cycle warmup.
        r = mod.run_at_load(0.6, np.random.default_rng(1), packets_per_port=150)
        assert r["gbps"] > 0
        assert r["drop_pct"] == 0.0


class TestLeoConstellation:
    def test_constellation_shape(self):
        mod = load_example("leo_constellation")
        g = mod.build_constellation()
        assert g.number_of_nodes() == 66
        degrees = [d for _, d in g.degree()]
        assert max(degrees) <= 4  # a 4-port Raw router per satellite

    def test_hop_latency_is_microseconds(self):
        mod = load_example("leo_constellation")
        us = mod.hop_forwarding_us(1024)
        assert 1.0 < us < 10.0

    def test_paths_exist_between_all_plane_pairs(self):
        import networkx as nx

        mod = load_example("leo_constellation")
        g = mod.build_constellation()
        assert nx.is_connected(g)


class TestFabricComputePieces:
    def test_cost_table_runs(self, capsys):
        mod = load_example("fabric_compute")
        mod.cost_table()
        out = capsys.readouterr().out
        assert "xor_cipher" in out
