"""Flit-level dynamic network: wormhole integrity, latency, deadlock."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raw.dynrouter import Header, WormholeNetwork, _route_direction
from repro.raw.layout import Direction, manhattan
from repro.raw.network import DynamicNetwork
from repro.sim.kernel import Simulator


class TestHeader:
    def test_validation(self):
        with pytest.raises(ValueError):
            Header(dst=16, length=1)
        with pytest.raises(ValueError):
            Header(dst=0, length=32)  # 32 body words + header > limit


class TestDimensionOrder:
    def test_x_before_y(self):
        # 0 (0,0) -> 15 (3,3): go EAST until x matches, then SOUTH.
        assert _route_direction(0, 15) is Direction.EAST
        assert _route_direction(3, 15) is Direction.SOUTH

    def test_arrival(self):
        assert _route_direction(7, 7) is None

    def test_westward(self):
        assert _route_direction(3, 0) is Direction.WEST
        assert _route_direction(12, 0) is Direction.NORTH


def _run_messages(messages, until=50_000):
    """messages: list of (src, dst, words). Returns {(dst, tag): words}."""
    sim = Simulator()
    net = WormholeNetwork(sim)
    received = {}

    def sender(src, dst, words, tag):
        yield from net.send(src, dst, tuple(words), tag=tag)

    def receiver(tile, expect):
        for _ in range(expect):
            header, words = yield from net.receive(tile)
            received[(tile, header.tag)] = words

    expect_per_tile = {}
    for tag, (src, dst, words) in enumerate(messages):
        sim.add_process(sender(src, dst, words, tag), f"send{tag}")
        expect_per_tile[dst] = expect_per_tile.get(dst, 0) + 1
    for tile, expect in expect_per_tile.items():
        sim.add_process(receiver(tile, expect), f"recv{tile}")
    sim.run(until=until, raise_on_deadlock=False)
    return received, sim


class TestDelivery:
    def test_single_message_content(self):
        received, _ = _run_messages([(0, 15, list(range(10)))])
        assert received[(15, 0)] == tuple(range(10))

    def test_header_only_message(self):
        received, _ = _run_messages([(5, 6, [])])
        assert received[(6, 0)] == ()

    def test_latency_in_thesis_envelope(self):
        """Nearest-neighbor ALU-to-ALU: 15-30 cycles for 1..16 words.

        The flit model's uncontended latency must sit in the same band
        as the closed-form estimator used everywhere else."""
        for words in (1, 8, 16):
            sim = Simulator()
            net = WormholeNetwork(sim)
            done = {}

            def send():
                yield from net.send(5, 6, tuple(range(words)))

            def recv():
                header, body = yield from net.receive(6)
                done["t"] = sim.now

            sim.add_process(send(), "s")
            sim.add_process(recv(), "r")
            sim.run(until=500, raise_on_deadlock=False)
            estimate = DynamicNetwork.latency(5, 6, words)
            assert done["t"] == pytest.approx(estimate, abs=10)
            assert done["t"] >= 3  # it is a pipeline, not a wire

    def test_latency_scales_with_hops(self):
        times = {}
        for dst in (1, 3, 15):
            sim = Simulator()
            net = WormholeNetwork(sim)

            def send(d=dst):
                yield from net.send(0, d, (1, 2, 3))

            def recv(d=dst):
                yield from net.receive(d)
                times[d] = sim.now

            sim.add_process(send(), "s")
            sim.add_process(recv(), "r")
            sim.run(until=1000, raise_on_deadlock=False)
        assert times[1] < times[3] < times[15]


class TestWormholeIntegrity:
    def test_concurrent_worms_do_not_interleave(self):
        """Two long messages crossing the same output link: each arrives
        contiguous and intact (the per-output mutex holds the route)."""
        a = [0x0A00 + i for i in range(20)]
        b = [0x0B00 + i for i in range(20)]
        received, _ = _run_messages([(0, 3, a), (4, 3, b)])
        assert received[(3, 0)] == tuple(a)
        assert received[(3, 1)] == tuple(b)

    def test_many_to_one_all_arrive(self):
        msgs = [(src, 10, [src * 100 + i for i in range(8)]) for src in (0, 3, 12, 15)]
        received, _ = _run_messages(msgs)
        assert len(received) == 4
        for tag, (src, _, words) in enumerate(msgs):
            assert received[(10, tag)] == tuple(words)


@given(seed=st.integers(0, 500), n_msgs=st.integers(2, 12))
@settings(max_examples=15, deadline=None)
def test_random_traffic_is_deadlock_free_and_lossless(seed, n_msgs):
    """Property: dimension-ordered wormhole routing delivers any random
    message set completely (no deadlock, no loss, no corruption)."""
    rng = np.random.default_rng(seed)
    msgs = []
    for _ in range(n_msgs):
        src = int(rng.integers(0, 16))
        dst = int(rng.integers(0, 16))
        if dst == src:
            dst = (dst + 1) % 16
        length = int(rng.integers(0, 20))
        msgs.append((src, dst, [int(x) for x in rng.integers(0, 1 << 16, length)]))
    received, sim = _run_messages(msgs, until=200_000)
    assert len(received) == n_msgs
    for tag, (src, dst, words) in enumerate(msgs):
        assert received[(dst, tag)] == tuple(words)


@given(
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
    words=st.integers(0, 16),
)
@settings(max_examples=25, deadline=None)
def test_flit_latency_tracks_closed_form(src, dst, words):
    """Property: the flit model's uncontended latency stays within a
    small constant + per-hop slack of the closed-form estimator the rest
    of the repository uses (cache misses, control messages)."""
    if src == dst:
        dst = (dst + 1) % 16
    sim = Simulator()
    net = WormholeNetwork(sim)
    done = {}

    def send():
        yield from net.send(src, dst, tuple(range(words)))

    def recv():
        yield from net.receive(dst)
        done["t"] = sim.now

    sim.add_process(send(), "s")
    sim.add_process(recv(), "r")
    sim.run(until=2_000, raise_on_deadlock=False)
    estimate = DynamicNetwork.latency(src, dst, max(words, 1))
    hops = manhattan(src, dst)
    assert abs(done["t"] - estimate) <= 6 + 2 * hops
