"""Odds and ends: helpers and reference data not covered elsewhere."""

import pytest

from repro.experiments import paperdata
from repro.raw import costs
from repro.sim.kernel import Get, Put, Timeout, run_processes


class TestRunProcessesHelper:
    def test_runs_and_returns_simulator(self):
        log = []

        def a():
            yield Timeout(5)
            log.append("a")

        def b():
            yield Timeout(3)
            log.append("b")

        sim = run_processes(a(), b())
        assert sim.now == 5
        assert log == ["b", "a"]

    def test_with_trace(self):
        from repro.sim.trace import Trace

        def noop():
            yield Timeout(2)

        trace = Trace()
        sim = run_processes(noop(), trace=trace)
        assert sim.now == 2


class TestCostHelpers:
    def test_bytes_to_words_rounds_up(self):
        assert costs.bytes_to_words(64) == 16
        assert costs.bytes_to_words(65) == 17
        assert costs.bytes_to_words(1) == 1

    def test_gbps_mpps(self):
        # 8,000 bits in 1,000 cycles at 250 MHz = 2 Gbps.
        assert costs.gbps(8000, 1000) == pytest.approx(2.0)
        assert costs.mpps(1000, 1000) == pytest.approx(250.0)

    def test_positive_cycles_required(self):
        with pytest.raises(ValueError):
            costs.gbps(1, 0)
        with pytest.raises(ValueError):
            costs.mpps(1, -5)


class TestPaperData:
    def test_avg_below_peak_everywhere(self):
        for size, peak in paperdata.PEAK_GBPS.items():
            assert paperdata.AVG_GBPS[size] < peak

    def test_avg_to_peak_consistent_with_series(self):
        ratio = paperdata.AVG_GBPS[1024] / paperdata.PEAK_GBPS[1024]
        assert ratio == pytest.approx(paperdata.AVG_TO_PEAK, abs=0.01)

    def test_config_space_arithmetic(self):
        assert paperdata.CONFIG_SPACE == 5 ** 4 * 4
        assert paperdata.INSTR_PER_NAIVE_CONFIG == pytest.approx(3.28, abs=0.01)

    def test_raw_chip_parameters(self):
        assert paperdata.RAW_CLOCK_MHZ == 250
        assert costs.CLOCK_HZ == paperdata.RAW_CLOCK_MHZ * 1e6

    def test_reduction_consistency(self):
        assert paperdata.CONFIG_SPACE / paperdata.MINIMIZED_CONFIGS == pytest.approx(
            paperdata.REDUCTION_FACTOR, rel=0.01
        )


class TestExperimentResultPlumbing:
    def test_row_and_ratio(self):
        from repro.experiments.common import ExperimentResult

        r = ExperimentResult("x", "desc")
        r.add("a", 2.0, 4.0)
        r.add("b", 1.0)
        assert r.ratio("a") == 0.5
        assert r.ratio("b") is None
        with pytest.raises(KeyError):
            r.row("missing")

    def test_extra_table(self):
        from repro.experiments.common import ExperimentResult

        r = ExperimentResult("x", "desc")
        r.add("a", 1.0, kpps=5)
        text = r.extra_table(["kpps"])
        assert "kpps" in text and "5" in text
