"""Internal fragmentation and reassembly across the crossbar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.fragment import Fragment, Reassembler, fragment_words


class TestFragmentWords:
    def test_single_fragment(self):
        frags = fragment_words(list(range(10)), max_words=256, packet_id=1)
        assert len(frags) == 1
        assert frags[0].is_last
        assert frags[0].words == tuple(range(10))

    def test_exact_multiple(self):
        frags = fragment_words(list(range(512)), max_words=256, packet_id=1)
        assert [len(f.words) for f in frags] == [256, 256]

    def test_remainder(self):
        frags = fragment_words(list(range(600)), max_words=256, packet_id=1)
        assert [len(f.words) for f in frags] == [256, 256, 88]
        assert [f.index for f in frags] == [0, 1, 2]
        assert all(f.count == 3 for f in frags)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fragment_words([], 256, 1)

    def test_bad_max_words(self):
        with pytest.raises(ValueError):
            fragment_words([1], 0, 1)

    def test_fragment_validation(self):
        with pytest.raises(ValueError):
            Fragment(packet_id=1, index=2, count=2, words=(1,))
        with pytest.raises(ValueError):
            Fragment(packet_id=1, index=0, count=1, words=())


class TestReassembler:
    def test_in_order(self):
        words = list(range(600))
        r = Reassembler()
        frags = fragment_words(words, 256, packet_id=5)
        assert r.push(frags[0]) is None
        assert r.push(frags[1]) is None
        assert r.push(frags[2]) == words
        assert r.completed == 1
        assert r.in_flight == 0

    def test_out_of_order(self):
        words = list(range(600))
        r = Reassembler()
        f = fragment_words(words, 256, packet_id=5)
        assert r.push(f[2]) is None
        assert r.push(f[0]) is None
        assert r.push(f[1]) == words

    def test_interleaved_packets(self):
        r = Reassembler()
        a = fragment_words(list(range(300)), 256, packet_id=1)
        b = fragment_words(list(range(1000, 1300)), 256, packet_id=2)
        assert r.push(a[0]) is None
        assert r.push(b[0]) is None
        assert r.in_flight == 2
        assert r.push(b[1]) == list(range(1000, 1300))
        assert r.push(a[1]) == list(range(300))

    def test_duplicate_rejected(self):
        r = Reassembler()
        f = fragment_words(list(range(300)), 256, packet_id=1)
        r.push(f[0])
        with pytest.raises(ValueError):
            r.push(f[0])

    def test_inconsistent_count_rejected(self):
        r = Reassembler()
        r.push(Fragment(packet_id=1, index=0, count=3, words=(1,)))
        with pytest.raises(ValueError):
            r.push(Fragment(packet_id=1, index=1, count=2, words=(2,)))


@given(
    n_words=st.integers(min_value=1, max_value=2000),
    max_words=st.integers(min_value=1, max_value=300),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_fragment_reassemble_roundtrip(n_words, max_words, seed):
    """Property: any fragmentation, pushed in any order, reassembles."""
    import numpy as np

    words = list(range(n_words))
    frags = fragment_words(words, max_words, packet_id=seed)
    assert sum(len(f.words) for f in frags) == n_words
    order = list(np.random.default_rng(seed).permutation(len(frags)))
    r = Reassembler()
    outputs = [r.push(frags[i]) for i in order]
    done = [o for o in outputs if o is not None]
    assert len(done) == 1 and done[0] == words
