"""Command-line interface."""

import pytest

from repro.cli import REGISTRY, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_registry_covers_paper_artifacts(self):
        for required in ("fig7_1_peak", "fig7_1_avg", "fig7_3", "fig5_1", "table6_1"):
            assert required in REGISTRY


class TestRun:
    def test_run_fig5_1(self, capsys):
        assert main(["run", "fig5_1"]) == 0
        out = capsys.readouterr().out
        assert "cw" in out and "measured" in out

    def test_run_quick_quantum_ablation(self, capsys):
        assert main(["run", "abl_quantum", "--quick"]) == 0
        assert "quantum_256w" in capsys.readouterr().out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig5_1", "table6_1"]) == 0
        out = capsys.readouterr().out
        assert "fig5_1" in out and "table6_1" in out

    def test_unknown_name(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrace:
    def test_trace_quick(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "fig7_1_peak", "--quick",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "stage latency" in out
        assert "kernel self-profile" in out
        assert out_path.exists()

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown trace experiment" in capsys.readouterr().err

    def test_trace_leaves_telemetry_disabled(self):
        from repro.telemetry import runtime

        assert main(["trace", "fig7_1_peak", "--quick"]) == 0
        assert runtime.get() is None
