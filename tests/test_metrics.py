"""Measurement plumbing: meters, latency, utilization, statistics."""

import numpy as np
import pytest

from repro.metrics.latency import LatencyStats
from repro.metrics.stats import batch_means, mean_ci
from repro.metrics.throughput import ThroughputMeter
from repro.metrics.utilization import (
    BLOCKED_CODE,
    BUSY_CODE,
    IDLE_CODE,
    state_matrix,
    summarize_trace,
)
from repro.raw import costs
from repro.sim.trace import Trace


class TestThroughputMeter:
    def test_counts_in_window(self):
        m = ThroughputMeter(warmup_cycles=100)
        m.record(50, 64)  # before warmup: ignored
        m.record(150, 64)
        m.record(250, 64)
        assert m.packets == 2
        assert m.bits == 2 * 64 * 8
        assert m.total_seen == 3

    def test_stop_cycle(self):
        m = ThroughputMeter(warmup_cycles=0, stop_cycle=200)
        m.record(100, 64)
        m.record(250, 64)
        assert m.packets == 1

    def test_gbps_arithmetic(self):
        m = ThroughputMeter()
        m.record(10, 1250)  # 10,000 bits
        # 10,000 bits over 1,000 cycles at 250 MHz = 2.5 Gbps.
        assert m.gbps(end_cycle=1000) == pytest.approx(2.5)
        assert m.mpps(end_cycle=1000) == pytest.approx(0.25)

    def test_empty_meter(self):
        m = ThroughputMeter()
        assert m.gbps() == 0.0
        assert m.mpps() == 0.0

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter(warmup_cycles=-1)


class TestLatencyStats:
    def test_basic_percentiles(self):
        ls = LatencyStats()
        for d in range(1, 101):
            ls.record(0, d)
        assert ls.mean() == pytest.approx(50.5)
        assert ls.percentile(50) == pytest.approx(50.5)
        assert ls.percentile(99) == pytest.approx(99.01, rel=0.01)

    def test_summary_units(self):
        ls = LatencyStats()
        ls.record(0, 250)  # 250 cycles at 250 MHz = 1 us
        s = ls.summary()
        assert s["mean_us"] == pytest.approx(1.0)

    def test_negative_rejected(self):
        ls = LatencyStats()
        with pytest.raises(ValueError):
            ls.record(10, 5)

    def test_empty(self):
        ls = LatencyStats()
        assert ls.empty
        assert ls.summary() == {}
        assert np.isnan(ls.mean())


class TestUtilization:
    def _trace(self):
        t = Trace()
        t.record("a", "busy", 0, 60)
        t.record("a", "rx", 60, 100)
        t.record("b", "mem", 0, 30)
        return t

    def test_summary_fractions(self):
        s = summarize_trace(self._trace(), 0, 100)
        assert s["a"].busy_frac == pytest.approx(0.6)
        assert s["a"].blocked_frac == pytest.approx(0.4)
        assert s["a"].idle == 0
        assert s["b"].blocked_frac == pytest.approx(0.3)
        assert s["b"].idle == 70

    def test_windowed_summary(self):
        s = summarize_trace(self._trace(), 50, 100)
        assert s["a"].busy == 10
        assert s["a"].blocked == 40

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            summarize_trace(self._trace(), 10, 10)

    def test_state_matrix(self):
        mat = state_matrix(self._trace(), ["a", "b"], 0, 100)
        assert mat.shape == (2, 100)
        assert mat[0, 0] == BUSY_CODE
        assert mat[0, 99] == BLOCKED_CODE
        assert mat[1, 50] == IDLE_CODE


class TestStats:
    def test_mean_ci_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = mean_ci(rng.normal(0, 1, 10))
        large = mean_ci(rng.normal(0, 1, 1000))
        assert large[1] < small[1]

    def test_single_sample(self):
        assert mean_ci([5.0]) == (5.0, 0.0)

    def test_no_samples(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_batch_means(self):
        data = list(range(100))
        batches = batch_means(data, 10)
        assert len(batches) == 10
        assert batches[0] == pytest.approx(4.5)

    def test_batch_means_validation(self):
        with pytest.raises(ValueError):
            batch_means([1, 2, 3], 10)
        with pytest.raises(ValueError):
            batch_means([1, 2, 3], 1)
