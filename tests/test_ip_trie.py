"""PATRICIA trie vs a brute-force longest-prefix-match oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.addr import Prefix, random_prefixes
from repro.ip.trie import PatriciaTrie


def oracle(prefixes, addr):
    best, best_len = None, -1
    for p, v in prefixes:
        if p.matches(addr) and p.length > best_len:
            best, best_len = v, p.length
    return best


class TestBasics:
    def test_empty_lookup(self):
        t = PatriciaTrie()
        assert t.lookup(0x01020304) is None
        assert len(t) == 0

    def test_default_route(self):
        t = PatriciaTrie()
        t.insert(Prefix(0, 0), "default")
        assert t.lookup(0) == "default"
        assert t.lookup(0xFFFFFFFF) == "default"

    def test_longest_match_wins(self):
        t = PatriciaTrie()
        t.insert(Prefix.parse("10.0.0.0/8"), "short")
        t.insert(Prefix.parse("10.1.0.0/16"), "long")
        assert t.lookup(Prefix.parse("10.1.2.3/32").address) == "long"
        assert t.lookup(Prefix.parse("10.2.0.0/32").address) == "short"

    def test_replace_value(self):
        t = PatriciaTrie()
        p = Prefix.parse("10.0.0.0/8")
        t.insert(p, 1)
        t.insert(p, 2)
        assert len(t) == 1
        assert t.lookup(p.address) == 2

    def test_host_routes(self):
        t = PatriciaTrie()
        t.insert(Prefix.parse("1.2.3.4/32"), "exact")
        assert t.lookup(Prefix.parse("1.2.3.4").address) == "exact"
        assert t.lookup(Prefix.parse("1.2.3.5").address) is None

    def test_items_roundtrip(self):
        rng = np.random.default_rng(0)
        prefixes = random_prefixes(100, rng)
        t = PatriciaTrie()
        for i, p in enumerate(prefixes):
            t.insert(p, i)
        got = {(str(p), v) for p, v in t.items()}
        want = {(str(p), i) for i, p in enumerate(prefixes)}
        assert got == want

    def test_lookup_with_path_counts_visits(self):
        t = PatriciaTrie()
        t.insert(Prefix.parse("128.0.0.0/1"), "a")
        _, visits = t.lookup_with_path(0xFFFFFFFF)
        assert visits >= 2  # root + leaf

    def test_max_depth_bounded(self):
        rng = np.random.default_rng(0)
        t = PatriciaTrie()
        for i, p in enumerate(random_prefixes(500, rng)):
            t.insert(p, i)
        assert t.max_depth() <= 33  # 32 bits + root


class TestDelete:
    def test_delete_present(self):
        t = PatriciaTrie()
        p = Prefix.parse("10.0.0.0/8")
        t.insert(p, 1)
        assert t.delete(p)
        assert len(t) == 0
        assert t.lookup(p.address) is None

    def test_delete_absent(self):
        t = PatriciaTrie()
        assert not t.delete(Prefix.parse("10.0.0.0/8"))

    def test_delete_keeps_siblings(self):
        t = PatriciaTrie()
        a, b = Prefix.parse("10.0.0.0/8"), Prefix.parse("10.128.0.0/9")
        t.insert(a, "a")
        t.insert(b, "b")
        t.delete(b)
        assert t.lookup(Prefix.parse("10.128.0.1").address) == "a"

    def test_delete_merges_nodes(self):
        t = PatriciaTrie()
        for text, v in [("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("10.1.1.0/24", 3)]:
            t.insert(Prefix.parse(text), v)
        nodes_before = t.node_count()
        t.delete(Prefix.parse("10.1.0.0/16"))
        assert t.node_count() <= nodes_before
        assert t.lookup(Prefix.parse("10.1.1.5").address) == 3
        assert t.lookup(Prefix.parse("10.1.2.5").address) == 1


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_trie_matches_oracle(data):
    """Property: lookups agree with brute force over random tables."""
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = data.draw(st.integers(1, 120))
    prefixes = [(p, i) for i, p in enumerate(random_prefixes(n, rng, min_len=1, max_len=32))]
    t = PatriciaTrie()
    for p, v in prefixes:
        t.insert(p, v)
    for _ in range(40):
        if rng.random() < 0.5:
            p, _ = prefixes[int(rng.integers(0, len(prefixes)))]
            a = p.random_member(rng)
        else:
            a = int(rng.integers(0, 1 << 32))
        assert t.lookup(a) == oracle(prefixes, a)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_trie_matches_oracle_after_deletes(data):
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    prefixes = [(p, i) for i, p in enumerate(random_prefixes(60, rng, min_len=4, max_len=28))]
    t = PatriciaTrie()
    for p, v in prefixes:
        t.insert(p, v)
    kill = data.draw(st.integers(0, 59))
    removed = prefixes[:kill]
    kept = prefixes[kill:]
    for p, _ in removed:
        assert t.delete(p)
    assert len(t) == len(kept)
    for _ in range(30):
        a = int(rng.integers(0, 1 << 32))
        assert t.lookup(a) == oracle(kept, a)
