"""Configuration space enumeration and minimization (chapter 6)."""

import pytest

from repro.core.allocator import Allocator
from repro.core.config_space import (
    CLIENT_CCWPREV,
    CLIENT_CWPREV,
    CLIENT_IN,
    ConfigurationSpace,
    LocalConfig,
)
from repro.core.ring import RingGeometry


@pytest.fixture(scope="module")
def space4():
    return ConfigurationSpace(RingGeometry(4))


@pytest.fixture(scope="module")
def minimized4(space4):
    return space4.minimize()


class TestGlobalSpace:
    def test_size_formula(self, space4):
        # |Hdr|^4 x |Token| = 5^4 x 4 = 2,500 (section 6.1).
        assert space4.global_size() == 2500

    def test_enumeration_count_and_uniqueness(self, space4):
        configs = list(space4.enumerate_global())
        assert len(configs) == 2500
        assert len(set(configs)) == 2500

    def test_other_ring_sizes(self):
        assert ConfigurationSpace(RingGeometry(2)).global_size() == 3 ** 2 * 2
        assert ConfigurationSpace(RingGeometry(3)).global_size() == 4 ** 3 * 3

    def test_naive_imem_budget(self, space4):
        # "approximately 3.3 instructions left per each configuration"
        assert 8192 / space4.global_size() == pytest.approx(3.28, abs=0.01)


class TestLocalProjection:
    def test_fig51_projection(self, space4):
        alloc = space4.allocator.allocate((2, 3, 0, 1), 0)
        locals_ = space4.local_configs_for(alloc)
        # Tile 0: sends its own packet cw (in -> cwnext) and delivers
        # 2's cw flow to its egress (cwprev -> out).
        assert locals_[0].cwnext_src == CLIENT_IN
        assert locals_[0].out_src == CLIENT_CWPREV
        # Tile 1: forwards 0's cw flow, starts its own ccw flow, and
        # receives 3's ccw flow for its egress.
        assert locals_[1].cwnext_src == CLIENT_CWPREV
        assert locals_[1].ccwnext_src == CLIENT_IN
        assert locals_[1].out_src == CLIENT_CCWPREV

    def test_idle_tile_config(self, space4):
        alloc = space4.allocator.allocate((None, None, None, None), 0)
        for cfg in space4.local_configs_for(alloc):
            assert cfg.servers_in_use() == 0
            assert cfg.expansion == 0

    def test_direct_self_route(self, space4):
        alloc = space4.allocator.allocate((0, None, None, None), 0)
        cfg = space4.local_configs_for(alloc)[0]
        assert cfg.out_src == CLIENT_IN
        assert cfg.expansion == 0

    def test_expansion_tracks_hops(self, space4):
        alloc = space4.allocator.allocate((2, None, None, None), 0)
        locals_ = space4.local_configs_for(alloc)
        assert locals_[0].expansion == 0
        assert locals_[1].expansion == 1
        assert locals_[2].expansion == 2


class TestMinimization:
    def test_minimized_size_near_paper(self, minimized4):
        # The thesis reports 32; our allocator's reachable set is 40
        # (documented in EXPERIMENTS.md).  Same order of magnitude and
        # a >60x reduction either way.
        assert 20 <= minimized4.minimized_size <= 64
        assert minimized4.reduction_factor > 38

    def test_usage_covers_all_walks(self, minimized4):
        # 2,500 global configs x 4 tiles = 10,000 local occurrences.
        assert sum(minimized4.usage.values()) == 10_000

    def test_config_ids_stable_and_dense(self, minimized4):
        ids = [minimized4.config_id(c) for c in minimized4.local_configs]
        assert ids == list(range(minimized4.minimized_size))

    def test_post_minimization_imem_budget(self, minimized4):
        assert minimized4.instructions_per_config(8192) > 100

    def test_clients_match_table_6_1(self, minimized4):
        allowed = {CLIENT_IN, CLIENT_CWPREV, CLIENT_CCWPREV}
        for cfg in minimized4.local_configs:
            assert set(cfg.clients_in_use()) <= allowed
            assert 0 <= cfg.expansion <= 3

    def test_most_common_config_is_simple(self, minimized4):
        # The hottest local configs involve at most one flow.
        top = minimized4.local_configs[0]
        assert top.servers_in_use() <= 1
