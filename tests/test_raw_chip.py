"""Whole-chip assembly and the tile programming model."""

import pytest

from repro.raw import costs
from repro.raw.chip import RawChip
from repro.raw.layout import Direction
from repro.raw.tile import TileProgram
from repro.sim.kernel import Get, Put
from repro.sim.trace import Trace


class TestChipAssembly:
    def test_default_has_two_static_networks(self):
        chip = RawChip()
        assert len(chip.static) == 2
        assert chip.network is chip.static[0]

    def test_single_network_option(self):
        chip = RawChip(num_static_networks=1)
        assert len(chip.static) == 1

    def test_network_count_validated(self):
        with pytest.raises(ValueError):
            RawChip(num_static_networks=0)
        with pytest.raises(ValueError):
            RawChip(num_static_networks=3)

    def test_per_tile_resources(self):
        chip = RawChip()
        assert len(chip.caches) == 16
        assert len(chip.switches) == 16
        assert chip.caches[0] is not chip.caches[1]

    def test_tile_id_validated(self):
        chip = RawChip()

        def nop():
            yield from ()

        with pytest.raises(ValueError):
            chip.add_tile_program(16, nop())
        with pytest.raises(ValueError):
            chip.add_switch_program(-1, nop())

    def test_seconds_conversion(self):
        chip = RawChip()

        def burn():
            from repro.sim.kernel import Timeout

            yield Timeout(250)

        chip.add_tile_program(0, burn())
        chip.run()
        assert chip.seconds() == pytest.approx(1e-6)  # 250 cycles @ 250 MHz


class TestTileToTileTransfer:
    def test_neighbor_word_transfer(self):
        """The Fig 3-2 scenario: tile 0 sends a word south to tile 4."""
        chip = RawChip()
        link = chip.network.link(0, 4)
        got = []

        def sender():
            yield Put(link, 0xBEEF)

        def receiver():
            got.append((yield Get(link)))

        chip.add_tile_program(0, sender())
        chip.add_tile_program(4, receiver())
        chip.run()
        assert got == [0xBEEF]
        # One switch hop: the word lands a cycle after the send.
        assert chip.now == costs.STATIC_HOP_CYCLES

    def test_trace_keys_per_tile(self):
        trace = Trace()
        chip = RawChip(trace=trace)
        link = chip.network.link(5, 6)

        def blocked_reader():
            yield Get(link)

        def late_writer():
            from repro.sim.kernel import Timeout

            yield Timeout(25)
            yield Put(link, 1)

        chip.add_tile_program(6, blocked_reader())
        chip.add_tile_program(5, late_writer())
        chip.run()
        assert trace.time_in_state("t6", "rx") > 20
        assert trace.time_in_state("t5", "busy") == 25


class TestTileProgram:
    class _Echo(TileProgram):
        def __init__(self, tile, chan_in, chan_out):
            super().__init__(tile)
            self.chan_in = chan_in
            self.chan_out = chan_out

        def run(self):
            word = yield self.recv(self.chan_in)
            yield self.compute(3)
            yield self.send(self.chan_out, word + 1)

    def test_echo_program(self):
        chip = RawChip()
        a = chip.sim.channel("a")
        b = chip.sim.channel("b")
        prog = self._Echo(0, a, b)
        got = []

        def driver():
            yield Put(a, 41)
            got.append((yield Get(b)))

        chip.add_tile_program(0, prog.run())
        chip.add_io_program(driver(), "driver")
        chip.run()
        assert got == [42]
        assert chip.now == 3

    def test_load_store_costs(self):
        chip = RawChip()
        prog = TileProgram(0, cache=chip.caches[0])

        def runner():
            yield from prog.store_words(0, 64)  # 2 c/w + misses
            yield from prog.load_words(0, 64)  # 1 c/w, now resident

        chip.add_tile_program(0, runner())
        chip.run()
        lines = 64 * 4 // costs.CACHE_LINE_BYTES
        expected = 64 * 2 + lines * costs.CACHE_MISS_CYCLES + 64 * 1
        assert chip.now == expected

    def test_base_run_not_implemented(self):
        with pytest.raises(NotImplementedError):
            TileProgram(0).run()
