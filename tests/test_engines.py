"""The unified Engine interface: conformance, determinism, golden numbers.

The two anchors:

* Every fidelity satisfies the same :class:`repro.engines.Engine`
  protocol and fills the shared :class:`RunResult` schema.
* A default-config :class:`FabricEngine` run reproduces the seed
  harness's Fig 7-1 peak numbers *bit for bit* -- the refactor moved
  constants into :class:`CostModel` without changing a single cycle.
"""

import pickle

import pytest

from repro.config import CostModel, SimConfig
from repro.engines import (
    ENGINES,
    Engine,
    FabricEngine,
    RouterEngine,
    RunResult,
    WordLevelEngine,
    WorkloadSpec,
    make_engine,
    run_config,
)

#: Seed-repo golden value: fig7_1_peak "1024B" with quanta=2000, seed=0.
GOLDEN_PEAK_1024B_GBPS = 26.77124183006536


class TestProtocol:
    @pytest.mark.parametrize("fidelity", sorted(ENGINES))
    def test_every_engine_satisfies_protocol(self, fidelity):
        engine = make_engine(SimConfig(fidelity=fidelity))
        assert isinstance(engine, Engine)
        assert engine.fidelity == fidelity

    def test_configure_chains(self):
        config = SimConfig(seed=3)
        engine = FabricEngine()
        assert engine.configure(config) is engine
        assert engine.config is config

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(fidelity="spice")
        assert isinstance(make_engine(SimConfig(fidelity="router")), RouterEngine)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(pattern="tornado")
        with pytest.raises(ValueError):
            WorkloadSpec(packet_bytes=8)

    def test_specs_pickle(self):
        workload = WorkloadSpec(pattern="hotspot", p_hot=0.9)
        assert pickle.loads(pickle.dumps(workload)) == workload


class TestGoldenNumbers:
    def test_fabric_engine_matches_seed_harness_bit_for_bit(self):
        result = FabricEngine(SimConfig()).run(WorkloadSpec())
        assert result.gbps == GOLDEN_PEAK_1024B_GBPS

    def test_fig7_1_routes_through_engines_unchanged(self):
        from repro.experiments.fig7_1 import _fabric_gbps

        assert (
            _fabric_gbps(1024, uniform=False, quanta=2000, seed=0)
            == GOLDEN_PEAK_1024B_GBPS
        )

    def test_closed_form_peak_agrees(self):
        from repro.core.phases import peak_gbps

        assert FabricEngine(SimConfig()).run(
            WorkloadSpec(quanta=200)
        ).gbps == pytest.approx(peak_gbps(1024), rel=0.05)


class TestDeterminism:
    @pytest.mark.parametrize("fidelity", ["fabric", "router"])
    def test_same_seed_same_result(self, fidelity):
        config = SimConfig(fidelity=fidelity, seed=11)
        workload = WorkloadSpec(pattern="uniform", quanta=300)
        a = run_config(config, workload)
        b = run_config(config, workload)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_uniform_result(self):
        workload = WorkloadSpec(pattern="uniform", quanta=300)
        a = run_config(SimConfig(seed=1), workload)
        b = run_config(SimConfig(seed=2), workload)
        assert a.gbps != b.gbps


class TestRunResultSchema:
    def test_fabric_result_fields(self):
        result = FabricEngine(SimConfig()).run(WorkloadSpec(quanta=100))
        assert result.fidelity == "fabric"
        assert result.cycles > 0
        assert result.delivered_words > 0
        assert len(result.per_port_packets) == 4
        assert result.latency == {}  # fabric loop has no packet timestamps
        d = result.to_dict()
        assert d["config"]["ports"] == 4
        assert d["workload"]["packet_bytes"] == 1024
        assert "trace" not in d

    def test_router_result_has_latency_percentiles(self):
        result = RouterEngine(SimConfig(fidelity="router")).run(
            WorkloadSpec(packets=200)
        )
        assert result.fidelity == "router"
        for key in ("p50_cycles", "p99_cycles", "mean_us"):
            assert key in result.latency
        assert result.latency["p50_cycles"] > 0

    def test_wordlevel_runs_with_cycle_budget(self):
        result = WordLevelEngine(
            SimConfig(fidelity="wordlevel")
        ).run(WorkloadSpec(packet_bytes=256, cycles=30_000, warmup_cycles=5_000))
        assert result.fidelity == "wordlevel"
        assert result.delivered_packets > 0
        assert result.gbps > 0

    def test_wordlevel_rejects_non_prototype_shapes(self):
        engine = WordLevelEngine(SimConfig(fidelity="wordlevel", ports=8))
        with pytest.raises(ValueError):
            engine.run(WorkloadSpec())
        engine = WordLevelEngine(SimConfig(fidelity="wordlevel"))
        # Saturated-only engine: arrival processes are rejected.
        with pytest.raises(ValueError):
            engine.run(WorkloadSpec(traffic="bernoulli"))

    def test_wordlevel_hotspot_now_runs(self):
        # Historically raised; the unified traffic factory lifted it.
        result = WordLevelEngine(SimConfig(fidelity="wordlevel")).run(
            WorkloadSpec(
                pattern="hotspot", packet_bytes=256,
                cycles=30_000, warmup_cycles=5_000,
            )
        )
        assert result.delivered_packets > 0
        hot = result.per_port_packets[0]
        assert hot >= max(result.per_port_packets[1:])


class TestCostInjection:
    def test_faster_clock_scales_fabric_gbps(self):
        base = FabricEngine(SimConfig()).run(WorkloadSpec(quanta=200))
        fast = FabricEngine(SimConfig(clock_hz=500e6)).run(WorkloadSpec(quanta=200))
        assert fast.gbps == pytest.approx(2 * base.gbps)

    def test_control_overhead_reaches_the_quantum_loop(self):
        lean_costs = CostModel.default().replace(quantum_ctl_overhead=24)
        lean = FabricEngine(SimConfig(costs=lean_costs)).run(WorkloadSpec(quanta=200))
        base = FabricEngine(SimConfig()).run(WorkloadSpec(quanta=200))
        assert lean.gbps > base.gbps

    def test_quantum_words_override_reaches_fragmentation(self):
        small = FabricEngine(SimConfig(quantum_words=64)).run(
            WorkloadSpec(quanta=400)
        )
        base = FabricEngine(SimConfig()).run(WorkloadSpec(quanta=400))
        # 1024B = 256 words: quantum 64 pays control overhead 4x per packet
        assert small.gbps < base.gbps


class TestSweepEndToEnd:
    def test_sweep_row_matches_golden_peak(self):
        from repro.sweep import parse_grid, run_sweep

        table = run_sweep(parse_grid(["ports=4", "quantum=256"]), workers=1)
        assert len(table["rows"]) == 1
        assert table["rows"][0]["result"]["gbps"] == GOLDEN_PEAK_1024B_GBPS

    def test_sweep_uses_multiple_workers(self):
        from repro.sweep import parse_grid, run_sweep

        table = run_sweep(
            parse_grid(["quantum=64,128,256,512"]),
            workers=4,
            base_workload=WorkloadSpec(quanta=300),
        )
        assert table["sweep"]["cells"] == 4
        assert len(table["sweep"]["worker_pids"]) > 1

    def test_sweep_rows_stable_across_worker_counts(self):
        from repro.sweep import parse_grid, run_sweep

        grid = parse_grid(["bytes=64,1024", "pattern=uniform"])
        base = WorkloadSpec(quanta=300)
        serial = run_sweep(grid, workers=1, base_workload=base)
        parallel = run_sweep(grid, workers=2, base_workload=base)
        assert [r["result"] for r in serial["rows"]] == [
            r["result"] for r in parallel["rows"]
        ]
