"""Ring geometry: paths, distances, expansion numbers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import CCW, CW, Link, Path, RingGeometry


class TestDistances:
    def test_four_port_distances(self):
        r = RingGeometry(4)
        assert r.cw_distance(0, 2) == 2
        assert r.ccw_distance(0, 2) == 2
        assert r.cw_distance(0, 1) == 1
        assert r.ccw_distance(0, 1) == 3
        assert r.cw_distance(3, 0) == 1

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            RingGeometry(4).distance(0, 1, "sideways")

    def test_min_ports(self):
        with pytest.raises(ValueError):
            RingGeometry(1)


class TestPaths:
    def test_cw_path_links(self):
        r = RingGeometry(4)
        p = r.path(0, 2, CW)
        assert p.links == (Link(CW, 0), Link(CW, 1))
        assert p.hops == 2

    def test_ccw_path_links(self):
        r = RingGeometry(4)
        p = r.path(1, 3, CCW)
        assert p.links == (Link(CCW, 1), Link(CCW, 0))

    def test_direct_path(self):
        r = RingGeometry(4)
        p = r.path(2, 2, CW)
        assert p.direction == "direct"
        assert p.links == ()
        assert p.hops == 0

    def test_port_range_checked(self):
        r = RingGeometry(4)
        with pytest.raises(ValueError):
            r.path(0, 4, CW)
        with pytest.raises(ValueError):
            r.path(-1, 0, CW)

    def test_candidate_order_cw_first(self):
        r = RingGeometry(4)
        cands = r.candidate_paths(0, 2)
        assert [p.direction for p in cands] == [CW, CCW]

    def test_candidate_two_networks(self):
        r = RingGeometry(4)
        cands = r.candidate_paths(0, 2, networks=2)
        assert [(p.direction, p.network) for p in cands] == [
            (CW, 1), (CCW, 1), (CW, 2), (CCW, 2)
        ]

    def test_self_candidate_single(self):
        r = RingGeometry(4)
        assert len(r.candidate_paths(1, 1, networks=2)) == 1


class TestExpansion:
    def test_tiles_on_cw_path(self):
        r = RingGeometry(4)
        p = r.path(3, 1, CW)
        assert r.ring_tiles_on_path(p) == [3, 0, 1]

    def test_expansion_is_position(self):
        r = RingGeometry(4)
        p = r.path(3, 1, CW)
        assert r.expansion(p, 3) == 0
        assert r.expansion(p, 0) == 1
        assert r.expansion(p, 1) == 2

    def test_expansion_off_path_rejected(self):
        r = RingGeometry(4)
        p = r.path(0, 1, CW)
        with pytest.raises(ValueError):
            r.expansion(p, 3)


class TestAllLinks:
    def test_counts(self):
        r = RingGeometry(4)
        links = r.all_links()
        # cw + ccw + out + in per tile.
        assert len(links) == 4 * 4
        assert len(r.all_links(networks=2)) == 4 * 4 + 8


@given(n=st.integers(2, 12), src=st.integers(0, 11), dst=st.integers(0, 11),
       direction=st.sampled_from([CW, CCW]))
@settings(max_examples=200)
def test_path_hops_equal_distance(n, src, dst, direction):
    src, dst = src % n, dst % n
    r = RingGeometry(n)
    p = r.path(src, dst, direction)
    if src == dst:
        assert p.hops == 0
    else:
        assert p.hops == r.distance(src, dst, direction)
        # cw and ccw distances partition the ring.
        assert r.cw_distance(src, dst) + r.ccw_distance(src, dst) == n
        # the path really ends at dst
        assert r.ring_tiles_on_path(p)[-1] == dst
