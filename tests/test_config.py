"""CostModel/SimConfig: defaults, overrides, pickling, and the compat shim.

The single most important property here: ``CostModel.default()`` must
reproduce, field for field, the calibrated constants the repository's
chapter-7 numbers were produced with.  The expected values below are
hardcoded on purpose -- they are the historical ``repro.raw.costs``
module-level constants, and a drift in either the dataclass defaults or
the shim should fail loudly, not re-derive itself.
"""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    COST_MODEL_FIELDS,
    FIDELITIES,
    SIM_CONFIG_FIELDS,
    CostModel,
    SimConfig,
)
from repro.raw import costs

#: The historical module-level constants of repro.raw.costs, frozen at
#: the values the thesis reproduction was calibrated against.
HISTORICAL_COSTS = {
    "clock_hz": 250e6,
    "word_bits": 32,
    "num_tiles": 16,
    "static_hop_cycles": 1,
    "static_fifo_depth": 4,
    "send_to_use_cycles": 3,
    "dynamic_base_cycles": 15,
    "dynamic_per_hop_cycles": 2,
    "dynamic_max_message_words": 32,
    "net_to_mem_cycles_per_word": 2,
    "mem_to_net_cycles_per_word": 1,
    "cut_through_cycles_per_word": 1,
    "predicted_branch_cycles": 1,
    "mispredicted_branch_cycles": 3,
    "dmem_words": 8192,
    "imem_words": 8192,
    "switch_mem_words": 8192,
    "cache_line_bytes": 32,
    "cache_ways": 2,
    "cache_hit_cycles": 3,
    "cache_miss_cycles": 54,
    "header_words": 2,
    "quantum_ctl_overhead": 48,
    "max_quantum_words": 256,
    "ingress_header_cycles": 20,
    "lookup_cycles": 30,
}


class TestCostModelDefaults:
    def test_every_field_matches_history(self):
        model = CostModel.default()
        for name, expected in HISTORICAL_COSTS.items():
            assert getattr(model, name) == expected, name

    def test_no_unchecked_fields(self):
        # A field added to CostModel must also be added to the golden
        # table above (and given a deliberate default).
        assert set(HISTORICAL_COSTS) == set(COST_MODEL_FIELDS)

    def test_default_is_singleton(self):
        assert CostModel.default() is CostModel.default()

    def test_shim_reexports_every_constant(self):
        mapping = {
            "CLOCK_HZ": "clock_hz",
            "WORD_BITS": "word_bits",
            "NUM_TILES": "num_tiles",
            "STATIC_HOP_CYCLES": "static_hop_cycles",
            "STATIC_FIFO_DEPTH": "static_fifo_depth",
            "SEND_TO_USE_CYCLES": "send_to_use_cycles",
            "DYNAMIC_BASE_CYCLES": "dynamic_base_cycles",
            "DYNAMIC_PER_HOP_CYCLES": "dynamic_per_hop_cycles",
            "DYNAMIC_MAX_MESSAGE_WORDS": "dynamic_max_message_words",
            "NET_TO_MEM_CYCLES_PER_WORD": "net_to_mem_cycles_per_word",
            "MEM_TO_NET_CYCLES_PER_WORD": "mem_to_net_cycles_per_word",
            "CUT_THROUGH_CYCLES_PER_WORD": "cut_through_cycles_per_word",
            "PREDICTED_BRANCH_CYCLES": "predicted_branch_cycles",
            "MISPREDICTED_BRANCH_CYCLES": "mispredicted_branch_cycles",
            "DMEM_WORDS": "dmem_words",
            "IMEM_WORDS": "imem_words",
            "SWITCH_MEM_WORDS": "switch_mem_words",
            "CACHE_LINE_BYTES": "cache_line_bytes",
            "CACHE_WAYS": "cache_ways",
            "CACHE_HIT_CYCLES": "cache_hit_cycles",
            "CACHE_MISS_CYCLES": "cache_miss_cycles",
            "HEADER_WORDS": "header_words",
            "QUANTUM_CTL_OVERHEAD": "quantum_ctl_overhead",
            "MAX_QUANTUM_WORDS": "max_quantum_words",
            "INGRESS_HEADER_CYCLES": "ingress_header_cycles",
            "LOOKUP_CYCLES": "lookup_cycles",
        }
        model = CostModel.default()
        for const, field_name in mapping.items():
            assert getattr(costs, const) == getattr(model, field_name), const

    def test_shim_helpers_agree_with_methods(self):
        model = CostModel.default()
        for size in (40, 64, 65, 1024, 1500):
            assert costs.bytes_to_words(size) == model.bytes_to_words(size)
        assert costs.gbps(8192, 100) == model.gbps(8192, 100)
        assert costs.mpps(500, 1000) == model.mpps(500, 1000)


class TestCostModelValue:
    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel.default().clock_hz = 1.0

    def test_replace_does_not_mutate_default(self):
        fast = CostModel.default().replace(clock_hz=425e6)
        assert fast.clock_hz == 425e6
        assert CostModel.default().clock_hz == 250e6

    def test_pickle_round_trip(self):
        model = CostModel.default().replace(quantum_ctl_overhead=64)
        assert pickle.loads(pickle.dumps(model)) == model

    def test_to_dict_covers_every_field(self):
        assert set(CostModel.default().to_dict()) == set(COST_MODEL_FIELDS)

    @given(st.integers(min_value=1, max_value=9000))
    def test_bytes_to_words_ceil(self, size):
        model = CostModel.default()
        words = model.bytes_to_words(size)
        assert (words - 1) * model.word_bytes < size <= words * model.word_bytes


class TestSimConfig:
    def test_defaults(self):
        config = SimConfig()
        assert config.ports == 4
        assert config.fidelity == "fabric"
        assert config.costs is CostModel.default()

    def test_none_overrides_fall_through_to_costs(self):
        assert SimConfig().cost_model() is CostModel.default()

    def test_overrides_are_merged_into_costs(self):
        config = SimConfig(quantum_words=512, clock_hz=425e6, static_fifo_depth=8)
        merged = config.cost_model()
        assert merged.max_quantum_words == 512
        assert merged.clock_hz == 425e6
        assert merged.static_fifo_depth == 8
        # everything else untouched
        assert merged.quantum_ctl_overhead == 48

    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(ports=1)
        with pytest.raises(ValueError):
            SimConfig(networks=3)
        with pytest.raises(ValueError):
            SimConfig(fidelity="spice")

    def test_fidelities_cover_engines(self):
        assert FIDELITIES == ("fabric", "space", "router", "wordlevel")

    def test_pickle_round_trip(self):
        config = SimConfig(ports=8, seed=7, costs=CostModel.default().replace(cache_ways=4))
        assert pickle.loads(pickle.dumps(config)) == config

    def test_to_dict_covers_every_field(self):
        assert set(SimConfig().to_dict()) == set(SIM_CONFIG_FIELDS) | {"costs"}


class TestSweepHelpers:
    def test_parse_grid_aliases_and_types(self):
        from repro.sweep import parse_grid

        grid = parse_grid(["ports=4,8", "quantum=256", "pattern=uniform"])
        assert grid == {
            "ports": [4, 8],
            "quantum_words": [256],
            "pattern": ["uniform"],
        }

    def test_parse_grid_rejects_garbage(self):
        from repro.sweep import parse_grid

        with pytest.raises(ValueError):
            parse_grid(["ports"])
        with pytest.raises(ValueError):
            parse_grid(["ports="])

    def test_expand_grid_is_cartesian_and_ordered(self):
        from repro.sweep import expand_grid

        cells = expand_grid({"b": [1, 2], "a": ["x"]})
        assert cells == [{"a": "x", "b": 1}, {"a": "x", "b": 2}]

    def test_cell_seed_deterministic_and_distinct(self):
        from repro.sweep import cell_seed

        a = cell_seed(0, {"ports": 4, "quantum_words": 256})
        assert a == cell_seed(0, {"quantum_words": 256, "ports": 4})
        assert a != cell_seed(0, {"ports": 4, "quantum_words": 512})
        assert a != cell_seed(1, {"ports": 4, "quantum_words": 256})

    def test_build_cell_routes_keys_to_layers(self):
        from repro.sweep import build_cell

        config, workload = build_cell(
            {"ports": 8, "packet_bytes": 64, "cache_miss_cycles": 100}
        )
        assert config.ports == 8
        assert workload.packet_bytes == 64
        assert config.costs.cache_miss_cycles == 100
        # un-swept cost fields keep their defaults
        assert config.costs.quantum_ctl_overhead == 48

    def test_build_cell_rejects_unknown_keys(self):
        from repro.sweep import build_cell

        with pytest.raises(ValueError):
            build_cell({"warp_factor": 9})
