"""Static/dynamic network models."""

import pytest

from repro.raw import costs
from repro.raw.layout import Direction, NUM_TILES
from repro.raw.network import DynamicNetwork, StaticNetwork, route_hops
from repro.sim.kernel import Get, Put, Simulator


class TestStaticNetwork:
    def setup_method(self):
        self.sim = Simulator()
        self.net = StaticNetwork(self.sim)

    def test_adjacent_links_exist_both_ways(self):
        a = self.net.link(5, 6)
        b = self.net.link(6, 5)
        assert a is not b
        assert a.latency == costs.STATIC_HOP_CYCLES
        assert a.capacity == costs.STATIC_FIFO_DEPTH

    def test_non_adjacent_rejected(self):
        with pytest.raises(ValueError):
            self.net.link(0, 5)
        with pytest.raises(ValueError):
            self.net.link(0, 2)

    def test_edges_only_at_periphery(self):
        assert self.net.edge(0, Direction.NORTH) is not None
        assert self.net.edge(4, Direction.WEST) is not None
        with pytest.raises(ValueError):
            self.net.edge(5, Direction.NORTH)  # 5 is interior

    def test_edge_directions(self):
        assert set(self.net.edge_directions(0)) == {Direction.NORTH, Direction.WEST}
        assert self.net.edge_directions(5) == []
        assert set(self.net.edge_directions(7)) == {Direction.EAST}

    def test_words_flow_across_link(self):
        link = self.net.link(5, 6)
        got = []

        def src():
            yield Put(link, 99)

        def dst():
            got.append((yield Get(link)))

        self.sim.add_process(src())
        self.sim.add_process(dst())
        self.sim.run()
        assert got == [99]
        assert self.sim.now == costs.STATIC_HOP_CYCLES

    def test_two_networks_independent(self):
        sim = Simulator()
        n1 = StaticNetwork(sim, index=1)
        n2 = StaticNetwork(sim, index=2)
        assert n1.link(5, 6) is not n2.link(5, 6)


class TestDynamicNetwork:
    def test_nearest_neighbor_range(self):
        # The thesis: nearest neighbor ALU-to-ALU is 15-30 cycles.
        lo = DynamicNetwork.latency(5, 6, words=1)
        hi = DynamicNetwork.latency(5, 6, words=16)
        assert lo == costs.DYNAMIC_BASE_CYCLES == 15
        assert 15 <= lo <= hi <= 30

    def test_hops_add_latency(self):
        near = DynamicNetwork.latency(0, 1)
        far = DynamicNetwork.latency(0, 15)
        assert far == near + 5 * costs.DYNAMIC_PER_HOP_CYCLES

    def test_message_size_bounds(self):
        with pytest.raises(ValueError):
            DynamicNetwork.latency(0, 1, words=0)
        with pytest.raises(ValueError):
            DynamicNetwork.latency(0, 1, words=costs.DYNAMIC_MAX_MESSAGE_WORDS + 1)

    def test_mailbox_delivery(self):
        sim = Simulator()
        dn = DynamicNetwork(sim)
        got = []

        def sender():
            yield from dn.send(0, 15, "hello", words=3)

        def receiver():
            got.append((yield Get(dn.mailbox(15))))

        sim.add_process(sender())
        sim.add_process(receiver())
        sim.run()
        assert got == ["hello"]
        assert sim.now == DynamicNetwork.latency(0, 15, 3)

    def test_mailbox_requires_sim(self):
        with pytest.raises(RuntimeError):
            DynamicNetwork(None).mailbox(0)


class TestRouteHops:
    def test_dimension_order_x_first(self):
        hops = route_hops(0, 15)  # (0,0) -> (3,3)
        assert hops[:3] == [(1, 0), (2, 0), (3, 0)]  # X first
        assert hops[3:] == [(3, 1), (3, 2), (3, 3)]  # then Y

    def test_same_tile(self):
        assert route_hops(7, 7) == []

    def test_length_is_manhattan(self):
        from repro.raw.layout import manhattan

        for src in range(NUM_TILES):
            for dst in range(NUM_TILES):
                assert len(route_hops(src, dst)) == manhattan(src, dst)
