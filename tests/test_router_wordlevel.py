"""Word-level router: real words over the real static network.

These are the heaviest tests in the suite (every word is a kernel
event); windows are kept short.  What they buy: end-to-end payload
integrity through the switch fabric, cross-validation of the phase
model's cycle accounting, and the distributed-allocation property (all
four Crossbar Processors independently compute the same schedule -- if
they did not, words would misroute and the payload checks would fail).
"""

import numpy as np
import pytest

from repro.core.phases import quantum_cycles
from repro.raw import costs
from repro.raw.layout import CROSSBAR_RING, INGRESS_TILES
from repro.router.wordlevel import (
    WordLevelRouter,
    permutation_source,
    uniform_source,
)
from repro.sim.trace import Trace


@pytest.fixture(scope="module")
def peak_64():
    router = WordLevelRouter(permutation_source(64), verify_payloads=True)
    result = router.run(until_cycles=20_000, warmup_cycles=4_000)
    return router, result


@pytest.fixture(scope="module")
def peak_1024():
    router = WordLevelRouter(permutation_source(1024), verify_payloads=True)
    result = router.run(until_cycles=50_000, warmup_cycles=10_000)
    return router, result


class TestDelivery:
    def test_packets_flow(self, peak_64):
        _, result = peak_64
        assert result.delivered_packets > 100

    def test_payloads_intact(self, peak_64, peak_1024):
        for router, _ in (peak_64, peak_1024):
            assert router.payload_errors == 0

    def test_permutation_balances_ports(self, peak_64):
        _, result = peak_64
        counts = result.per_port_packets
        assert max(counts) - min(counts) <= 2

    def test_words_account_for_packets(self, peak_1024):
        _, result = peak_1024
        assert result.delivered_words == result.delivered_packets * 256


class TestCycleCrossValidation:
    """The word-level control overhead per quantum lands within ~60% of
    the phase model's calibrated 48 cycles (the generated programs
    serialize ingress prep the thesis's hand assembly overlaps -- see
    EXPERIMENTS.md), and throughput tracks the paper's shape."""

    def test_1024B_near_paper(self, peak_1024):
        _, result = peak_1024
        assert result.gbps == pytest.approx(26.9, rel=0.15)
        assert result.mpps == pytest.approx(3.3, rel=0.15)

    def test_64B_within_band(self, peak_64):
        _, result = peak_64
        assert result.gbps == pytest.approx(7.3, rel=0.30)

    def test_size_ordering_preserved(self, peak_64, peak_1024):
        assert peak_1024[1].gbps > 2.5 * peak_64[1].gbps

    def test_implied_control_overhead(self, peak_1024):
        _, result = peak_1024
        cycles_per_packet = result.cycles * 4 / result.delivered_packets
        control = cycles_per_packet - 256 - 2  # body + expansion
        assert costs.QUANTUM_CTL_OVERHEAD * 0.8 <= control <= costs.QUANTUM_CTL_OVERHEAD * 1.8


class TestUniformTraffic:
    def test_uniform_runs_and_delivers(self):
        rng = np.random.default_rng(11)
        router = WordLevelRouter(uniform_source(256, rng), verify_payloads=True)
        result = router.run(until_cycles=25_000, warmup_cycles=5_000)
        assert result.delivered_packets > 50
        assert router.payload_errors == 0

    def test_uniform_below_permutation(self):
        rng = np.random.default_rng(11)
        uni = WordLevelRouter(uniform_source(256, rng)).run(25_000, 5_000)
        perm = WordLevelRouter(permutation_source(256)).run(25_000, 5_000)
        assert uni.gbps < perm.gbps


class TestTracing:
    def test_fig7_3_trace_shape(self):
        trace = Trace(4_000, 8_000)
        rng = np.random.default_rng(7)
        router = WordLevelRouter(uniform_source(64, rng), trace=trace)
        result = router.run(until_cycles=8_000)
        summaries = result.utilization(4_000, 8_000)
        # Ingress tiles blocked on the crossbar (Fig 7-3's gray).
        ing = [summaries[f"t{t}"] for t in INGRESS_TILES if f"t{t}" in summaries]
        assert ing and all(s.blocked_frac > 0.4 for s in ing)
        # Crossbar tile processors alternate compute and blocking.
        for t in CROSSBAR_RING:
            key = f"t{t}"
            if key in summaries:
                assert summaries[key].busy_frac > 0.0

    def test_untraced_run_raises_on_utilization(self):
        router = WordLevelRouter(permutation_source(64))
        result = router.run(until_cycles=2_000)
        with pytest.raises(RuntimeError):
            result.utilization()


class TestRestrictions:
    def test_multi_quantum_packet_rejected(self):
        def jumbo(port):
            from repro.ip.packet import IPv4Packet

            return (port + 1) % 4, IPv4Packet.synthesize(1, 2, 2048)

        router = WordLevelRouter(jumbo)
        with pytest.raises(ValueError):
            router.run(until_cycles=5_000)
