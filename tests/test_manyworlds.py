"""The many-worlds engine's correctness contract.

The vectorized engine (`repro.parallel.manyworlds`) promises that world
0 is *bit-identical* to the scalar fabric engine with counter-based
sources, for every supported configuration -- not approximately equal,
identical in every counter.  These tests pin that contract across ring
sizes, traffic families and quantum lengths, pin the batch allocation
rule to the scalar `CompiledAllocator.grants`, pin `VecCounterUniform`
to the `zlib.crc32`-hashed scalar source, and check the reduction
(envelope) statistics against plain numpy over independent scalar runs.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core.allocator import CompiledAllocator
from repro.core.fabricsim import CounterUniformSource
from repro.core.ring import RingGeometry
from repro.engines import RunResult, WorkloadSpec
from repro.parallel.manyworlds import (
    ManyWorldsResult,
    VecCounterUniform,
    envelope,
    run_scalar_world,
    run_worlds,
    scalar_world_stats,
    supports,
)
from repro.seeds import world_seed


def _assert_worlds_match_scalar(mw: ManyWorldsResult, config, workload,
                                worlds=(0,)):
    """Every listed world's full counter set == the scalar engine's."""
    for w in worlds:
        vec = mw.stats[w]
        ref = scalar_world_stats(config, workload, w)
        assert vec.quanta == ref.quanta
        assert vec.idle_quanta == ref.idle_quanta
        assert vec.cycles == ref.cycles
        assert vec.delivered_words == ref.delivered_words
        assert vec.delivered_packets == ref.delivered_packets
        assert vec.blocked_events == ref.blocked_events
        assert list(vec.per_port_words) == list(ref.per_port_words)
        assert list(vec.per_port_packets) == list(ref.per_port_packets)
        assert list(vec.grant_histogram) == list(ref.grant_histogram)


# ---------------------------------------------------------------------------
# World-0 bit-identity, property-tested over the supported matrix.
# ---------------------------------------------------------------------------
@given(
    ports=st.sampled_from([4, 8, 16]),
    traffic=st.sampled_from(["uniform", "imix", "imix_onoff"]),
    quanta=st.sampled_from([60, 150]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=12, deadline=None)
def test_world0_bit_identical_to_scalar(ports, traffic, quanta, seed):
    config = SimConfig(seed=seed, ports=ports)
    if traffic == "uniform":
        # Not a preset: the legacy flat-kwargs uniform pattern.
        workload = WorkloadSpec(pattern="uniform", quanta=quanta)
    else:
        workload = WorkloadSpec(traffic=traffic, quanta=quanta)
    assert supports(config, workload) is None
    mw = run_worlds(config, workload, 2)
    assert mw.vectorized
    _assert_worlds_match_scalar(mw, config, workload, worlds=(0,))


@given(
    quantum=st.sampled_from([64, 128, 512]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=6, deadline=None)
def test_world0_identity_across_quantum_lengths(quantum, seed):
    config = SimConfig(seed=seed, ports=8, quantum_words=quantum)
    workload = WorkloadSpec(traffic="imix", quanta=80)
    if supports(config, workload) is not None:
        # Tiny quanta can make IMIX's 1024B class multi-fragment; the
        # contract there is a loud fallback, checked separately.
        return
    mw = run_worlds(config, workload, 2)
    assert mw.vectorized
    _assert_worlds_match_scalar(mw, config, workload, worlds=(0,))


def test_every_world_matches_its_scalar_run():
    """Not just world 0: each lane is its own bit-exact scalar run."""
    config = SimConfig(seed=3, ports=4)
    workload = WorkloadSpec(traffic="imix_onoff", quanta=120)
    mw = run_worlds(config, workload, 5)
    assert mw.vectorized
    _assert_worlds_match_scalar(mw, config, workload, worlds=range(5))


def test_networks2_unpacked_table_world0_identity():
    """networks=2 at n=16 needs all 64 mask bits (no hop packing)."""
    config = SimConfig(seed=9, ports=16, networks=2)
    workload = WorkloadSpec(pattern="uniform", quanta=60)
    assert supports(config, workload) is None
    mw = run_worlds(config, workload, 2)
    assert mw.vectorized
    _assert_worlds_match_scalar(mw, config, workload, worlds=(0,))


# ---------------------------------------------------------------------------
# The batch allocation rule vs the scalar one.
# ---------------------------------------------------------------------------
@given(
    geometry=st.sampled_from([(4, 1), (8, 1), (16, 1), (8, 2), (16, 2)]),
    token=st.integers(min_value=0, max_value=15),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_batch_grants_matches_scalar_grants(geometry, token, data):
    """batch_grants over random request vectors == grants() per world,
    covering both the hop-packed (bits <= 55) and unpacked (64-bit)
    table layouts."""
    n, networks = geometry
    token %= n
    compiled = CompiledAllocator(RingGeometry(n), networks=networks)
    dests = np.array(
        [
            data.draw(
                st.lists(
                    st.integers(min_value=-1, max_value=n - 1),
                    min_size=n, max_size=n,
                )
            )
            for _ in range(4)
        ],
        dtype=np.int64,
    )
    granted, hops = compiled.batch_grants(dests, token)
    for w in range(dests.shape[0]):
        requests = [None if d < 0 else int(d) for d in dests[w]]
        ref = compiled.grants(requests, token)
        got = {
            (src, requests[src], int(hops[w, src]))
            for src in range(n)
            if granted[w, src]
        }
        assert got == set(ref)


def test_batch_grants_rejects_bad_inputs():
    compiled = CompiledAllocator(RingGeometry(4))
    with pytest.raises(ValueError):
        compiled.batch_grants(np.array([[0, 1, 2, 4]]), 0)  # dest out of range
    with pytest.raises(ValueError):
        compiled.batch_grants(np.array([[0, 1, 2]]), 0)  # wrong width
    with pytest.raises(ValueError):
        compiled.batch_grants(np.array([[0, 1, 2, 3]]), 7)  # bad token


# ---------------------------------------------------------------------------
# VecCounterUniform vs the zlib.crc32 scalar source.
# ---------------------------------------------------------------------------
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                   min_size=1, max_size=5),
    n=st.sampled_from([2, 4, 8]),
    exclude_self=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_vec_counter_uniform_matches_scalar_source(seeds, n, exclude_self):
    vec = VecCounterUniform(256, seeds, n=n, exclude_self=exclude_self)
    scalars = [
        CounterUniformSource(256, s, n=n, exclude_self=exclude_self)
        for s in seeds
    ]
    for _ in range(8):
        for p in range(n):
            dest = vec.draw_col(p, np.ones(len(seeds), dtype=bool))
            for w, src in enumerate(scalars):
                d_ref, words = src(p)
                assert int(dest[w]) == d_ref
                assert words == 256
    # Draw counters advanced identically (the shard-protocol state).
    for w, src in enumerate(scalars):
        assert tuple(int(v) for v in vec._draws[w]) == src.state()


# ---------------------------------------------------------------------------
# Reduction statistics.
# ---------------------------------------------------------------------------
def test_envelope_matches_numpy_reference():
    vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    env = envelope(vals)
    arr = np.array(vals)
    assert env["n"] == len(vals)
    assert env["mean"] == pytest.approx(arr.mean())
    assert env["std"] == pytest.approx(arr.std(ddof=1))
    assert env["ci95"] == pytest.approx(
        1.96 * arr.std(ddof=1) / np.sqrt(len(vals))
    )
    assert env["p50"] == pytest.approx(np.percentile(arr, 50))
    assert env["p99"] == pytest.approx(np.percentile(arr, 99))
    assert env["min"] == arr.min() and env["max"] == arr.max()


def test_single_world_envelope_degenerates():
    env = envelope([2.5])
    assert env["std"] == 0.0 and env["ci95"] == 0.0
    assert env["mean"] == env["p50"] == env["min"] == env["max"] == 2.5


def test_manyworlds_stats_match_independent_scalar_seeds():
    """The envelope over K vectorized worlds == numpy over K genuinely
    independent scalar runs with the same derived seeds."""
    config = SimConfig(seed=11, ports=4)
    workload = WorkloadSpec(pattern="uniform", quanta=100)
    k = 6
    mw = run_worlds(config, workload, k)
    assert mw.vectorized
    ref_gbps = [scalar_world_stats(config, workload, w).gbps for w in range(k)]
    env = mw.envelope("gbps")
    assert mw.metric("gbps").tolist() == ref_gbps
    assert env["mean"] == pytest.approx(np.mean(ref_gbps))
    assert env["std"] == pytest.approx(np.std(ref_gbps, ddof=1))


# ---------------------------------------------------------------------------
# Result schema, seeds, fallback matrix.
# ---------------------------------------------------------------------------
def test_world_seeds_and_world_result_shape():
    config = SimConfig(seed=42, ports=4)
    workload = WorkloadSpec(traffic="imix", quanta=60)
    mw = run_worlds(config, workload, 3)
    assert mw.seeds == [world_seed(42, w) for w in range(3)]
    assert mw.seeds[0] == 42  # world 0 IS the base-seed run
    res = mw.world_result(0)
    assert isinstance(res, RunResult)
    assert res.config.seed == 42
    assert res.gbps == mw.stats[0].gbps
    assert res.delivered_packets == mw.stats[0].delivered_packets
    d = mw.to_dict()
    assert d["n_worlds"] == 3 and len(d["worlds"]) == 3
    assert set(d["envelopes"]) == {"gbps", "mpps", "delivered_packets",
                                   "delivered_words"}


def test_fallback_is_loud_and_seed_compatible():
    """Unsupported cells warn with the reason and still produce the
    same world seeds and result shape."""
    config = SimConfig(seed=5, ports=4, fidelity="router")
    workload = WorkloadSpec(pattern="uniform", packets=60)
    reason = supports(config, workload)
    assert reason is not None and "fabric-only" in reason
    with pytest.warns(UserWarning, match="cannot vectorize"):
        mw = run_worlds(config, workload, 2)
    assert not mw.vectorized
    assert mw.fallback_reason == reason
    assert mw.seeds == [world_seed(5, w) for w in range(2)]
    assert isinstance(mw.world_result(0), RunResult)
    assert mw.world_result(0).fidelity == "router"


def test_supports_fallback_matrix():
    base = SimConfig(seed=0, ports=4)
    wl = WorkloadSpec(pattern="uniform", quanta=50)
    assert supports(base, wl) is None
    assert "fabric-only" in supports(base.replace(fidelity="wordlevel"), wl)
    assert "64" in supports(base.replace(ports=32, networks=2), wl)
    big = WorkloadSpec(pattern="uniform", packet_bytes=65_536, quanta=50)
    assert "multi-fragment" in supports(base, big)
    from repro.faults.plan import FaultEvent, FaultPlan

    armed = wl.replace(fault_plan=FaultPlan(
        events=(FaultEvent(cycle=10, kind="token_loss"),), name="t"))
    assert "fault plan" in supports(base, armed)


def test_forced_scalar_matches_vectorized():
    """force_scalar runs the same worlds through the scalar loop; the
    two paths agree on every counter (no warning -- the caller asked)."""
    config = SimConfig(seed=7, ports=4)
    workload = WorkloadSpec(traffic="imix", quanta=80)
    vec = run_worlds(config, workload, 3)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        sca = run_worlds(config, workload, 3, force_scalar=True)
    assert vec.vectorized and not sca.vectorized
    for v, s in zip(vec.stats, sca.stats):
        assert v.cycles == s.cycles
        assert v.delivered_words == s.delivered_words
        assert list(v.grant_histogram) == list(s.grant_histogram)


def test_run_scalar_world_is_runresult_view():
    config = SimConfig(seed=13, ports=4)
    workload = WorkloadSpec(pattern="uniform", quanta=80)
    res = run_scalar_world(config, workload, 1)
    ref = scalar_world_stats(config, workload, 1)
    assert res.config.seed == world_seed(13, 1)
    assert res.delivered_words == ref.delivered_words
    assert res.cycles == ref.cycles
    assert res.gbps == pytest.approx(ref.gbps)


# ---------------------------------------------------------------------------
# Sweep integration.
# ---------------------------------------------------------------------------
def test_sweep_worlds_rows_carry_envelopes():
    from repro.sweep import run_sweep

    table = run_sweep(
        {"ports": [4], "traffic": ["imix"], "quanta": [60]}, worlds=3
    )
    assert table["sweep"]["worlds"] == 3
    (row,) = table["rows"]
    assert row["worlds"] == 3 and row["vectorized"]
    assert "fallback_reason" not in row
    env = row["envelope"]["gbps"]
    assert env["n"] == 3
    assert env["min"] <= env["p50"] <= env["max"]
    # ``result`` keeps the single-run row shape (world 0).
    assert row["result"]["gbps"] == pytest.approx(env["mean"], rel=0.5)
    assert row["result"]["fidelity"] == "fabric"


def test_sweep_worlds_rejects_bad_combinations():
    from repro.sweep import run_sweep

    with pytest.raises(ValueError):
        run_sweep({"ports": [4]}, worlds=0)


def test_sweep_worlds_with_telemetry_merges_per_world():
    # worlds + telemetry now combine: each world records into its own
    # recorder (forcing the scalar path) and the merged summary lands on
    # the row with per-world provenance.
    from repro.sweep import run_sweep

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        table = run_sweep(
            {"ports": [4], "quanta": [60]}, worlds=2, telemetry=True
        )
    (row,) = table["rows"]
    assert not row["vectorized"]
    tel = row["telemetry"]
    assert sorted(tel["workers"]) == ["0", "1"]
    assert tel["journeys"]["completed"] > 0
