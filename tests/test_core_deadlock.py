"""Deadlock analysis: the token schedule is safe, naive schedules are not."""

from itertools import product

import pytest

from repro.core.allocator import Allocator
from repro.core.deadlock import (
    allocation_flows,
    check_allocation_deadlock_free,
    find_cycle,
    naive_ring_flows,
    wait_for_graph,
)
from repro.core.ring import RingGeometry


class TestFindCycle:
    def test_acyclic(self):
        g = {1: {2}, 2: {3}, 3: set()}
        assert find_cycle(g) == []

    def test_self_loop(self):
        g = {1: {1}}
        cycle = find_cycle(g)
        assert cycle and cycle[0] == cycle[-1]

    def test_long_cycle(self):
        g = {1: {2}, 2: {3}, 3: {1}}
        cycle = find_cycle(g)
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2, 3}

    def test_diamond_is_acyclic(self):
        g = {1: {2, 3}, 2: {4}, 3: {4}, 4: set()}
        assert find_cycle(g) == []

    def test_empty(self):
        assert find_cycle({}) == []


class TestWaitForGraph:
    def test_edges_follow_flow_order(self):
        g = wait_for_graph([("a", "b", "c")])
        assert g["a"] == {"b"}
        assert g["b"] == {"c"}
        assert g["c"] == set()

    def test_shared_link_merges(self):
        g = wait_for_graph([("a", "x"), ("b", "x"), ("x", "c")])
        assert g["a"] == {"x"} and g["b"] == {"x"} and g["x"] == {"c"}


class TestRotatingCrossbarSafety:
    def test_every_reachable_allocation_is_deadlock_free(self):
        """Sweep the whole 2,500-point configuration space: the channel
        dependency graph of every allocation is acyclic (section 5.5)."""
        ring = RingGeometry(4)
        allocator = Allocator(ring)
        header_values = (None, 0, 1, 2, 3)
        for headers in product(header_values, repeat=4):
            for token in range(4):
                alloc = allocator.allocate(headers, token)
                assert check_allocation_deadlock_free(alloc), (headers, token)

    def test_flows_include_endpoints(self):
        ring = RingGeometry(4)
        alloc = Allocator(ring).allocate((2, None, None, None), 0)
        flows = allocation_flows(alloc)
        assert len(flows) == 1
        kinds = [link.kind for link in flows[0]]
        assert kinds[0] == "in" and kinds[-1] == "out"

    def test_larger_rings_also_safe(self):
        import numpy as np

        rng = np.random.default_rng(0)
        ring = RingGeometry(8)
        allocator = Allocator(ring)
        for _ in range(300):
            headers = [
                None if rng.random() < 0.2 else int(rng.integers(0, 8))
                for _ in range(8)
            ]
            alloc = allocator.allocate(headers, int(rng.integers(0, 8)))
            assert check_allocation_deadlock_free(alloc)


class TestNaiveScheduleDeadlocks:
    """The contrast case: the full-ring same-direction pattern the token
    scheme never emits has a cyclic dependency graph."""

    @pytest.mark.parametrize("direction", ["cw", "ccw"])
    def test_naive_full_ring_cycles(self, direction):
        ring = RingGeometry(4)
        flows = naive_ring_flows(ring, direction)
        graph = wait_for_graph(flows)
        cycle = find_cycle(graph)
        assert cycle, "expected a dependency cycle"
        # The cycle lives on the ring links, not the endpoints.
        assert all(link.kind == direction for link in cycle[:-1])

    def test_naive_larger_ring_cycles_too(self):
        ring = RingGeometry(8)
        assert find_cycle(wait_for_graph(naive_ring_flows(ring)))
