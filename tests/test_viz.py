"""Text renderers: timelines and tables."""

import pytest

from repro.metrics.utilization import summarize_trace
from repro.sim.trace import Trace
from repro.viz.tables import format_comparison, format_table
from repro.viz.timeline import render_timeline, render_utilization_bars


def _trace():
    t = Trace()
    t.record("t4", "busy", 0, 40)
    t.record("t4", "rx", 40, 100)
    t.record("t5", "busy", 0, 100)
    return t


class TestTimeline:
    def test_renders_rows_and_glyphs(self):
        out = render_timeline(_trace(), ["t4", "t5"], 0, 100, width=20)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("t4")
        body4 = lines[1][3:]
        assert "#" in body4 and "." in body4
        assert set(lines[2][3:].strip()) == {"#"}

    def test_busy_blocked_proportions(self):
        out = render_timeline(_trace(), ["t4"], 0, 100, width=10)
        row = out.splitlines()[1].split(None, 1)[1]
        assert row.count("#") == 4
        assert row.count(".") == 6

    def test_labels_substituted(self):
        out = render_timeline(_trace(), ["t4"], 0, 100, labels={"t4": "ingress0"})
        assert "ingress0" in out

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(_trace(), ["t4"], 50, 50)

    def test_width_clamped_to_span(self):
        out = render_timeline(_trace(), ["t4"], 0, 5, width=100)
        assert len(out.splitlines()[1].split(None, 1)[1]) <= 5

    def test_fault_states_get_distinct_glyphs(self):
        from repro.sim.kernel import DOWN, STALLED

        t = Trace()
        t.record("input:1", DOWN, 0, 50)
        t.record("input:1", "busy", 50, 100)
        t.record("input:2", STALLED, 0, 100)
        out = render_timeline(t, ["input:1", "input:2"], 0, 100, width=10)
        lines = out.splitlines()
        assert "x=down" in lines[0] and "~=stalled" in lines[0]
        row1 = lines[1].split(None, 1)[1]
        assert row1.count("x") == 5 and row1.count("#") == 5
        assert set(lines[2].split(None, 1)[1]) == {"~"}


class TestFaultUtilization:
    def test_faulted_cycles_counted_separately(self):
        from repro.sim.kernel import DOWN, STALLED

        t = Trace()
        t.record("k", "busy", 0, 30)
        t.record("k", DOWN, 30, 50)
        t.record("k", STALLED, 50, 60)
        s = summarize_trace(t, 0, 100)["k"]
        assert s.busy == 30
        assert s.faulted == 30
        assert s.blocked == 0
        assert s.idle == 40


class TestUtilizationBars:
    def test_bars_and_percentages(self):
        s = summarize_trace(_trace(), 0, 100)
        out = render_utilization_bars(s, ["t4", "t5"], width=10)
        assert "busy  40.0%" in out
        assert "blocked  60.0%" in out
        assert "busy 100.0%" in out


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out
        assert all(len(l) == len(lines[1]) for l in lines[3:])

    def test_format_comparison_ratio(self):
        rows = [
            {"label": "x", "measured": 2.0, "paper": 4.0},
            {"label": "y", "measured": 3.0, "paper": None},
        ]
        out = format_comparison(rows)
        assert "0.50" in out
        line_y = [l for l in out.splitlines() if l.startswith("y")][0]
        assert "- " in line_y
