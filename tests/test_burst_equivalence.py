"""Burst commands are cycle-for-cycle identical to their word loops.

``PutBurst``/``GetBurst``/``RouteBurst`` execute inside the kernel, but
they are defined as pure shorthand for the equivalent ``Put``/``Get``/
``Timeout`` loops: same completion cycles, same blocking intervals in
the trace, same results.  These tests pin that equivalence at the
kernel level (including under congestion, where the burst machines fall
back to the same park-and-wait paths word-at-a-time code uses) and
end-to-end on the word-level router with ``use_bursts`` on vs off.
"""

import hashlib

import numpy as np
import pytest

from repro.router.wordlevel import (
    WordLevelRouter,
    permutation_source,
    uniform_source,
)
from repro.sim import (
    BUSY,
    Channel,
    Get,
    GetBurst,
    Put,
    PutBurst,
    RouteBurst,
    Simulator,
    Timeout,
    Trace,
)


def trace_fingerprint(trace: Trace) -> str:
    h = hashlib.sha256()
    for key in trace.keys():
        for iv in trace.intervals(key):
            h.update(f"{iv.key}|{iv.state}|{iv.start}|{iv.end};".encode())
    return h.hexdigest()


def run_traced(build, until=None):
    """Run the processes ``build`` yields and return (sim, trace)."""
    trace = Trace()
    sim = Simulator(trace=trace)
    for gen, key in build(sim):
        sim.add_process(gen, name=key, trace_key=key)
    sim.run(until=until, raise_on_deadlock=False)
    return sim, trace


# ---------------------------------------------------------------------------
# Kernel-level equivalence.
# ---------------------------------------------------------------------------
class TestPutBurst:
    @staticmethod
    def _producer_words(ch, words):
        for w in words:
            yield Put(ch, w)
            yield Timeout(1, BUSY)

    @staticmethod
    def _producer_burst(ch, words):
        yield PutBurst(ch, words, gap=1, state=BUSY)

    @pytest.mark.parametrize("consumer_cost", [0, 1, 3, 7])
    def test_matches_word_loop_under_backpressure(self, consumer_cost):
        """A slow consumer forces TX blocking; bursts must block the
        same cycles the word loop does."""
        words = list(range(40))
        results = []
        for producer in (self._producer_words, self._producer_burst):

            def build(sim, producer=producer):
                ch = sim.channel("ch", capacity=2, latency=1)
                got = []

                def consumer():
                    for _ in words:
                        got.append((yield Get(ch)))
                        if consumer_cost:
                            yield Timeout(consumer_cost, BUSY)

                return [
                    (producer(ch, words), "prod"),
                    (consumer(), "cons"),
                ]

            sim, trace = run_traced(build)
            results.append((sim.now, trace_fingerprint(trace)))
        assert results[0] == results[1]

    def test_gap_zero_back_to_back(self):
        words = [1, 2, 3, 4]
        ends = []
        for make in (
            lambda ch: iter([Put(ch, w) for w in words]),
            lambda ch: iter([PutBurst(ch, words, gap=0)]),
        ):

            def build(sim, make=make):
                ch = sim.channel("ch", capacity=10, latency=0)

                def producer():
                    for cmd in make(ch):
                        yield cmd

                def consumer():
                    for _ in words:
                        yield Get(ch)

                return [(producer(), "prod"), (consumer(), "cons")]

            sim, _ = run_traced(build)
            ends.append(sim.now)
        assert ends[0] == ends[1]

    def test_empty_burst_is_noop(self):
        def proc(ch):
            yield PutBurst(ch, [], gap=1)
            yield Timeout(3)

        sim = Simulator()
        sim.add_process(proc(Channel("ch")))
        assert sim.run() == 3


class TestGetBurst:
    @pytest.mark.parametrize("producer_gap", [1, 2, 5])
    def test_matches_word_loop(self, producer_gap):
        """A trickling producer forces per-word RX blocking."""
        n = 30
        results = []
        for burst in (False, True):

            def build(sim, burst=burst):
                ch = sim.channel("ch", capacity=2, latency=1)
                got = []

                def producer():
                    for w in range(n):
                        yield Put(ch, w)
                        yield Timeout(producer_gap, BUSY)

                def consumer():
                    if burst:
                        vals = yield GetBurst(ch, n)
                        got.extend(vals)
                    else:
                        for _ in range(n):
                            got.append((yield Get(ch)))
                    assert got == list(range(n))

                return [(producer(), "prod"), (consumer(), "cons")]

            sim, trace = run_traced(build)
            results.append((sim.now, trace_fingerprint(trace)))
        assert results[0] == results[1]

    def test_zero_count_returns_empty_list(self):
        out = {}

        def proc(ch):
            out["vals"] = yield GetBurst(ch, 0)

        sim = Simulator()
        sim.add_process(proc(Channel("ch")))
        sim.run()
        assert out["vals"] == []


class TestRouteBurst:
    def test_single_move_relay_matches_word_loop(self):
        """Relay under backpressure: a full downstream channel parks the
        machine in the putter queue exactly like a blocked Put."""
        n = 25
        results = []
        for burst in (False, True):

            def build(sim, burst=burst):
                a = sim.channel("a", capacity=2, latency=1)
                b = sim.channel("b", capacity=1, latency=1)

                def producer():
                    for w in range(n):
                        yield Put(a, w)
                        yield Timeout(1, BUSY)

                def relay():
                    if burst:
                        yield RouteBurst(((a, b),), count=n)
                    else:
                        for _ in range(n):
                            w = yield Get(a)
                            yield Put(b, w)

                def consumer():
                    got = []
                    for _ in range(n):
                        got.append((yield Get(b)))
                        yield Timeout(3, BUSY)  # slow drain: congests b
                    assert got == list(range(n))

                return [
                    (producer(), "prod"),
                    (relay(), "relay"),
                    (consumer(), "cons"),
                ]

            sim, trace = run_traced(build)
            results.append((sim.now, trace_fingerprint(trace)))
        assert results[0] == results[1]

    def test_fanout_matches_word_loop(self):
        """One read, two writes per cycle (the header-exchange shape)."""
        n = 20
        results = []
        for burst in (False, True):

            def build(sim, burst=burst):
                src = sim.channel("src", capacity=2, latency=1)
                d1 = sim.channel("d1", capacity=1, latency=1)
                d2 = sim.channel("d2", capacity=1, latency=1)

                def producer():
                    for w in range(n):
                        yield Put(src, w)
                        yield Timeout(1, BUSY)

                def switch():
                    if burst:
                        yield RouteBurst(((src, d1), (src, d2)), count=n)
                    else:
                        for _ in range(n):
                            w = yield Get(src)
                            yield Put(d1, w)
                            yield Put(d2, w)

                def sink(ch, cost):
                    def gen():
                        got = []
                        for _ in range(n):
                            got.append((yield Get(ch)))
                            if cost:
                                yield Timeout(cost, BUSY)
                        assert got == list(range(n))

                    return gen()

                return [
                    (producer(), "prod"),
                    (switch(), "switch"),
                    (sink(d1, 0), "sink1"),
                    (sink(d2, 2), "sink2"),  # unequal drain: d2 congests
                ]

            sim, trace = run_traced(build)
            results.append((sim.now, trace_fingerprint(trace)))
        assert results[0] == results[1]

    def test_validates_arguments(self):
        ch = Channel("x")
        with pytest.raises(ValueError):
            RouteBurst(((ch, ch),), count=0)
        with pytest.raises(ValueError):
            RouteBurst((), count=1)


# ---------------------------------------------------------------------------
# End-to-end: the word-level router with bursts on vs off.
# ---------------------------------------------------------------------------
def _run_wordlevel(use_bursts, pattern, packet_bytes, seed=None, cycles=6000):
    trace = Trace()
    if pattern == "permutation":
        source = permutation_source(packet_bytes)
    else:
        source = uniform_source(packet_bytes, np.random.default_rng(seed))
    router = WordLevelRouter(
        source, trace=trace, verify_payloads=True, use_bursts=use_bursts
    )
    router.chip.run(until=cycles)
    assert router.payload_errors == 0
    return (
        router.chip.now,
        router.delivered_packets,
        router.delivered_words,
        router.per_port_packets,
        trace_fingerprint(trace),
    )


class TestWordLevelEquivalence:
    @pytest.mark.parametrize(
        "pattern,packet_bytes,seed",
        [
            ("permutation", 1024, None),
            ("permutation", 256, None),
            ("uniform", 512, 3),
        ],
    )
    def test_bursts_identical_to_word_loops(self, pattern, packet_bytes, seed):
        on = _run_wordlevel(True, pattern, packet_bytes, seed)
        off = _run_wordlevel(False, pattern, packet_bytes, seed)
        assert on == off

    def test_pinned_golden_peak(self):
        """Bit-for-bit regression pin: burst-path results must match the
        pre-optimization kernel's numbers exactly."""
        result = WordLevelRouter(permutation_source(1024)).run(
            30_000, warmup_cycles=5_000
        )
        assert (
            result.cycles,
            result.delivered_packets,
            result.delivered_words,
            result.gbps,
            result.mpps,
            result.per_port_packets,
        ) == (25_000, 304, 77_824, 24.90368, 3.04, [76, 76, 76, 76])
