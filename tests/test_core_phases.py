"""Phase timing model and its calibration against Fig 7-1."""

import pytest

from repro.core.phases import (
    DEFAULT_TIMING,
    PhaseTiming,
    idle_quantum_cycles,
    peak_gbps,
    quantum_cycles,
)
from repro.experiments import paperdata
from repro.raw import costs


class TestPhaseTiming:
    def test_default_sums_to_calibrated_overhead(self):
        assert DEFAULT_TIMING.control_total == costs.QUANTUM_CTL_OVERHEAD

    def test_custom_timing(self):
        t = PhaseTiming(headers_request=1, headers_send=2, headers_exchange=3,
                        choose_config=4, confirm=5)
        assert t.control_total == 15


class TestQuantumCycles:
    def test_formula(self):
        assert quantum_cycles(256, 2) == 256 + 2 + 48

    def test_zero_body(self):
        assert quantum_cycles(0, 0) == 48
        assert idle_quantum_cycles() == 48

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quantum_cycles(-1, 0)
        with pytest.raises(ValueError):
            quantum_cycles(0, -1)

    def test_unpipelined_adds_header_and_lookup(self):
        delta = quantum_cycles(64, 1, pipelined=False) - quantum_cycles(64, 1)
        assert delta == costs.INGRESS_HEADER_CYCLES + costs.LOOKUP_CYCLES

    def test_monotone_in_words(self):
        cycles = [quantum_cycles(w, 0) for w in (16, 32, 64, 128, 256)]
        assert cycles == sorted(cycles)


class TestCalibration:
    """The closed-form peak model must track the published Fig 7-1 bars."""

    @pytest.mark.parametrize("size", sorted(paperdata.PEAK_GBPS))
    def test_within_16_percent_of_paper(self, size):
        measured = peak_gbps(size)
        paper = paperdata.PEAK_GBPS[size]
        assert measured == pytest.approx(paper, rel=0.16), (measured, paper)

    def test_1024B_matches_headline(self):
        """The abstract's numbers: 26.9 Gbps and 3.3 Mpps."""
        gbps = peak_gbps(1024)
        assert gbps == pytest.approx(26.9, rel=0.02)
        mpps = gbps * 1e9 / (1024 * 8) / 1e6
        assert mpps == pytest.approx(3.3, rel=0.02)

    def test_throughput_rises_with_packet_size(self):
        series = [peak_gbps(s) for s in (64, 128, 256, 512, 1024)]
        assert series == sorted(series)

    def test_fragmentation_kicks_in_past_max_quantum(self):
        """A 2,048-byte packet needs two quanta: two control overheads."""
        one = peak_gbps(1024)
        two = peak_gbps(2048)
        # Per-bit cost identical up to the second control overhead.
        assert two < one * 1.01
        assert two == pytest.approx(one, rel=0.02)

    def test_two_orders_over_click(self):
        assert peak_gbps(1024) / paperdata.CLICK_GBPS > 100
