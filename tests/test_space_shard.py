"""Partition-boundary invariants of the space-partitioned fabric.

The contract under test (ISSUE 8 / DESIGN.md §13): a P-partitioned
token-window run is *bit-identical* to the single-process reference for
every supported cell -- across partition counts, chip sizes, channel
latencies, and traffic families -- and the stats merge is associative,
so any grouping of partitions folds to the same totals.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, SimConfig
from repro.core.fabricsim import FabricStats
from repro.core.spacetopo import (
    PartitionSim,
    build_topology,
    clos_topology,
    merge_part_stats,
    part_payload,
    payload_to_stats,
)
from repro.engines import WorkloadSpec, run_config
from repro.parallel import (
    SpaceSpec,
    SpaceWorkerPool,
    run_space,
    run_space_inprocess,
    run_space_serial,
)
from repro.telemetry import runtime


def assert_stats_identical(a: FabricStats, b: FabricStats) -> None:
    assert a.counters() == b.counters()


SOURCES = {
    "permutation": {"kind": "permutation", "words": 64, "shift": 3},
    "uniform": {"kind": "uniform_counter", "words": 48, "seed": 11},
    "imix": {"kind": "traffic", "spec": "imix", "seed": 5},
}


def spec_for(k: int, partitions: int, source_key: str, latency: int = 2,
             quanta: int = 200, warmup: int = 30) -> SpaceSpec:
    return SpaceSpec(
        k=k,
        latency=latency,
        partitions=partitions,
        source=SpaceSpec.pack_source(SOURCES[source_key]),
        quanta=quanta,
        warmup_quanta=warmup,
    )


# ---------------------------------------------------------------------------
# Topology invariants.
# ---------------------------------------------------------------------------
class TestTopology:
    def test_clos_shape(self):
        topo = clos_topology(4, latency=3)
        assert topo.num_nodes == 12
        assert topo.num_ports == 16
        assert len(topo.channels) == 32  # k^2 ingress->middle + k^2 ->egress
        assert all(ch.latency == 3 for ch in topo.channels)
        # Every global port maps in and out exactly once.
        assert sorted(topo.ext_in) == list(range(16))
        assert sorted(topo.ext_out.values()) == list(range(16))

    def test_route_reaches_every_destination(self):
        topo = clos_topology(4)
        for src in range(16):
            for dst in range(16):
                node, leg = topo.ext_in[src]
                # ingress -> middle
                mid_ch = topo.out_channel[(node, topo.route(node, dst))]
                # middle -> egress
                eg_ch = topo.out_channel[
                    (mid_ch.dst_node, topo.route(mid_ch.dst_node, dst))
                ]
                out_leg = topo.route(eg_ch.dst_node, dst)
                assert topo.ext_out[(eg_ch.dst_node, out_leg)] == dst

    def test_partition_balanced_and_window(self):
        topo = clos_topology(4, latency=5)
        blocks = topo.partition(5)  # 12 nodes over 5 parts: 3,3,2,2,2
        assert [len(b) for b in blocks] == [3, 3, 2, 2, 2]
        assert sorted(n for b in blocks for n in b) == list(range(12))
        assert topo.window(blocks) == 5
        # One partition: no boundary, effectively unbounded window.
        assert topo.window(topo.partition(1)) > 10**6

    def test_partition_clamps_to_node_count(self):
        topo = clos_topology(2)  # 6 nodes
        assert len(topo.partition(64)) == 6

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            clos_topology(4, latency=0)

    def test_unknown_geometry(self):
        with pytest.raises(ValueError):
            build_topology("mesh", 4)


# ---------------------------------------------------------------------------
# Bit-identity: partitioned == serial, every supported cell.
# ---------------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("source_key", sorted(SOURCES))
    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("partitions", [1, 2, 4])
    def test_inprocess_matches_serial(self, k, partitions, source_key):
        spec = spec_for(k, partitions, source_key)
        ref = run_space_serial(spec)
        got, info = run_space_inprocess(spec)
        assert_stats_identical(ref, got)
        assert info.partitions == min(partitions, 3 * k)

    def test_unequal_partition_sizes(self):
        # P=5 over 12 chips: blocks of 3/3/2/2/2 -- the window-batch
        # ordering must hold when partitions straddle stage boundaries.
        spec = spec_for(4, 5, "permutation", latency=1)
        ref = run_space_serial(spec)
        got, info = run_space_inprocess(spec)
        assert_stats_identical(ref, got)
        assert [len(b) for b in info.node_blocks] == [3, 3, 2, 2, 2]

    def test_larger_chip_short_run(self):
        spec = spec_for(8, 4, "permutation", latency=4, quanta=80, warmup=10)
        ref = run_space_serial(spec)
        got, _ = run_space_inprocess(spec)
        assert_stats_identical(ref, got)

    def test_cached_serial_matches_uncached(self):
        spec = spec_for(4, 1, "uniform")
        assert_stats_identical(
            run_space_serial(spec, cached=False),
            run_space_serial(spec, cached=True),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.sampled_from((2, 3, 4)),
        partitions=st.integers(1, 6),
        latency=st.integers(1, 4),
        source_key=st.sampled_from(sorted(SOURCES)),
    )
    def test_property_partitioning_never_changes_stats(
        self, k, partitions, latency, source_key
    ):
        spec = spec_for(
            k, partitions, source_key, latency=latency, quanta=90, warmup=15
        )
        ref = run_space_serial(spec)
        got, _ = run_space_inprocess(spec)
        assert_stats_identical(ref, got)

    def test_worker_pool_matches_serial_and_stays_warm(self):
        spec = spec_for(4, 4, "permutation", latency=3, quanta=250, warmup=30)
        ref = run_space_serial(spec)
        with SpaceWorkerPool(4) as pool:
            got1, info1 = run_space(spec, pool=pool)
            # Second, different workload through the same warm workers.
            spec2 = spec_for(4, 4, "uniform", latency=3, quanta=250, warmup=30)
            got2, _ = run_space(spec2, pool=pool)
            assert pool.runs == 2
        assert_stats_identical(ref, got1)
        assert not info1.serial_fallback
        assert info1.workers == 4
        assert_stats_identical(run_space_serial(spec2), got2)

    def test_pool_rejects_mismatched_partition_count(self):
        with SpaceWorkerPool(2) as pool:
            with pytest.raises(ValueError, match="partitions"):
                pool.run(spec_for(4, 3, "permutation"))


# ---------------------------------------------------------------------------
# Window protocol details.
# ---------------------------------------------------------------------------
class TestWindowProtocol:
    def test_window_counters_consistent(self):
        spec = spec_for(4, 3, "permutation", latency=2, quanta=200, warmup=20)
        _, info = run_space_inprocess(spec)
        total = spec.quanta + spec.warmup_quanta
        expected_rounds = -(-total // spec.latency)
        assert info.window == spec.latency
        assert info.rounds == expected_rounds
        assert info.windows_per_worker == [expected_rounds] * 3
        # Ingress and middle partitions send boundary flits; the egress
        # partition only receives.
        assert info.boundary_flits[-1] == 0
        assert sum(info.boundary_flits) > 0

    def test_boundary_flits_conserved_across_partitionings(self):
        # Total delivered traffic is partitioning-invariant even though
        # boundary volume is not.
        spec2 = spec_for(4, 2, "permutation")
        spec4 = spec_for(4, 4, "permutation")
        s2, i2 = run_space_inprocess(spec2)
        s4, i4 = run_space_inprocess(spec4)
        assert_stats_identical(s2, s4)
        # More cuts can only expose more (or equal) boundary traffic.
        assert sum(i4.boundary_flits) >= sum(i2.boundary_flits)

    def test_missing_batch_is_detected(self):
        # Running a consumer partition before its producer violates the
        # window protocol; the transport must fail loudly (empty
        # mailbox), not silently simulate with missing traffic.
        from collections import deque

        from repro.parallel.space_shard import _simulate_partition

        spec = spec_for(4, 3, "permutation")
        topo = spec.topology()
        blocks = topo.partition(3)
        empty = deque()

        def starved_recv():
            if not empty:
                raise RuntimeError("deadlock: empty mailbox")
            return empty.popleft()

        sent = []
        # Partition 1 (middle chips) consumes ingress batches that were
        # never produced.
        with pytest.raises(RuntimeError, match="deadlock"):
            _simulate_partition(
                spec,
                1,
                blocks,
                recv_fns={0: starved_recv},
                send_fns={2: sent.append},
            )

    def test_batch_count_matches_round_count(self):
        # Each producer sends exactly rounds-1 batches per out-peer
        # (every round but the last), empty windows included -- the
        # receiver counts batches, not flits, to frame its windows.
        from collections import deque

        from repro.parallel.space_shard import _simulate_partition

        spec = spec_for(2, 3, "permutation", latency=3, quanta=50, warmup=10)
        topo = spec.topology()
        blocks = topo.partition(3)
        total = spec.quanta + spec.warmup_quanta
        rounds = -(-total // spec.latency)
        sent_to_middle = deque()
        _, got_rounds, _, _, _ = _simulate_partition(
            spec, 0, blocks, recv_fns={}, send_fns={1: sent_to_middle.append}
        )
        assert got_rounds == rounds
        assert len(sent_to_middle) == rounds - 1


# ---------------------------------------------------------------------------
# Merge associativity (shared contract with fabric_shard's merge).
# ---------------------------------------------------------------------------
class TestMergeAssociativity:
    def _partition_payloads(self, spec: SpaceSpec):
        """Run the window protocol in-process and keep the raw
        per-partition PartStats (before the merge folds them)."""
        from collections import deque

        from repro.parallel.space_shard import (
            _simulate_partition,
            _toposort_partitions,
        )

        topo = spec.topology()
        blocks = topo.partition(spec.partitions)
        parts = len(blocks)
        mailboxes = {
            (s, d): deque()
            for s in range(parts)
            for d in range(parts)
            if s != d
        }
        payloads = {}
        for part_id in _toposort_partitions(topo, blocks):
            recv_fns = {
                s: mailboxes[(s, part_id)].popleft
                for s in range(parts)
                if (s, part_id) in mailboxes
            }
            send_fns = {
                d: mailboxes[(part_id, d)].append
                for d in range(parts)
                if (part_id, d) in mailboxes
            }
            payloads[part_id], *_ = _simulate_partition(
                spec, part_id, blocks, recv_fns, send_fns
            )
        return topo, [payload_to_stats(payloads[p]) for p in range(parts)]

    @staticmethod
    def _combine(a, b):
        """Fold two PartStats into one, the way a tree merge would."""
        from repro.core.spacetopo import PartStats

        return PartStats(
            num_ports=a.num_ports,
            delivered_words=a.delivered_words + b.delivered_words,
            delivered_packets=a.delivered_packets + b.delivered_packets,
            per_port_words=[
                x + y for x, y in zip(a.per_port_words, b.per_port_words)
            ],
            per_port_packets=[
                x + y for x, y in zip(a.per_port_packets, b.per_port_packets)
            ],
            blocked_events=a.blocked_events + b.blocked_events,
            body_max=[max(x, y) for x, y in zip(a.body_max, b.body_max)],
        )

    def test_merge_is_order_invariant(self):
        spec = spec_for(4, 3, "uniform")
        ref = run_space_serial(spec)
        topo, parts = self._partition_payloads(spec)
        for order in [(0, 1, 2), (2, 0, 1), (1, 2, 0)]:
            merged = merge_part_stats(
                [parts[i] for i in order], topo.num_ports, spec.costs
            )
            assert_stats_identical(ref, merged)

    def test_merge_is_grouping_invariant(self):
        # ((p0+p1), p2) == (p0, (p1+p2)) == flat -- true associativity,
        # the same contract fabric_shard's merge_stats holds for time
        # slices, here over space partitions.
        spec = spec_for(4, 3, "permutation")
        topo, parts = self._partition_payloads(spec)
        flat = merge_part_stats(parts, topo.num_ports, spec.costs)
        left = merge_part_stats(
            [self._combine(parts[0], parts[1]), parts[2]],
            topo.num_ports,
            spec.costs,
        )
        right = merge_part_stats(
            [parts[0], self._combine(parts[1], parts[2])],
            topo.num_ports,
            spec.costs,
        )
        assert_stats_identical(flat, left)
        assert_stats_identical(flat, right)

    def test_merge_rejects_mismatched_quanta(self):
        from repro.core.spacetopo import PartStats

        a = PartStats(num_ports=4, body_max=[1, 2])
        b = PartStats(num_ports=4, body_max=[1])
        with pytest.raises(ValueError, match="quantum counts"):
            merge_part_stats([a, b], 4, CostModel.default())

    def test_merge_rejects_mismatched_ports(self):
        from repro.core.spacetopo import PartStats

        a = PartStats(num_ports=4, body_max=[1])
        b = PartStats(num_ports=8, body_max=[1])
        with pytest.raises(ValueError, match="port counts"):
            merge_part_stats([a, b], 4, CostModel.default())

    def test_payload_roundtrip(self):
        spec = spec_for(2, 1, "permutation", quanta=50, warmup=5)
        topo = spec.topology()
        sim = PartitionSim(topo, range(topo.num_nodes), costs=spec.costs)
        from repro.parallel.space_shard import make_space_source

        sim.advance(make_space_source(spec), 0, 55, 5)
        restored = payload_to_stats(part_payload(sim.stats))
        assert restored == sim.stats


# ---------------------------------------------------------------------------
# Engine integration + loud fallback.
# ---------------------------------------------------------------------------
class TestSpaceEngine:
    def test_run_config_partition_invariance(self):
        wl = WorkloadSpec(pattern="permutation", shift=5, quanta=200)
        base = SimConfig(ports=16, fidelity="space", link_latency=2)
        ref = run_config(base, wl)
        for p in (2, 4):
            got = run_config(base.replace(partitions=p), wl)
            assert got.cycles == ref.cycles
            assert got.delivered_words == ref.delivered_words
            assert got.per_port_packets == ref.per_port_packets
            assert not got.extra["space_shard"]["serial_fallback"]

    def test_space_extra_surfaces_counters(self):
        cfg = SimConfig(ports=16, fidelity="space", partitions=2)
        res = run_config(cfg, WorkloadSpec(quanta=120))
        sp = res.extra["space_shard"]
        assert sp["workers"] == 2
        assert sp["window"] == cfg.link_latency
        assert len(sp["pipe_stall_s"]) == 2
        assert len(sp["boundary_flits"]) == 2

    def test_nonsquare_ports_rejected(self):
        cfg = SimConfig(ports=8, fidelity="space")
        with pytest.raises(ValueError, match="square"):
            run_config(cfg, WorkloadSpec(quanta=50))

    def test_fault_plans_rejected(self):
        from repro.faults import FaultEvent, FaultPlan

        cfg = SimConfig(ports=16, fidelity="space")
        wl = WorkloadSpec(
            quanta=50,
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=10, kind="token_loss"),)
            ),
        )
        with pytest.raises(ValueError, match="fault"):
            run_config(cfg, wl)

    def test_telemetry_runs_distributed_and_merges(self):
        # Telemetry no longer forces a serial fallback: workers record
        # locally, states merge on the coordinator, and the run stays
        # distributed, silent, and bit-identical.
        spec = spec_for(4, 3, "permutation", quanta=100, warmup=10)
        ref = run_space_serial(spec)
        with runtime.capture() as tel:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                got, info = run_space(spec)
        assert not info.serial_fallback
        assert info.workers == 3
        assert not caught
        assert_stats_identical(ref, got)
        summary = tel.summary()
        assert summary["space_shard"]["serial_fallback"] is False
        assert summary["space_shard"]["partitions"] == 3
        assert sorted(tel.workers) == [0, 1, 2]
        assert tel.journeys.completed > 0

    def test_telemetry_tables_identical_across_partitions(self):
        # The merged stage/dimension tables and the detailed-journey
        # reservoir must not depend on the partition count.
        tables = {}
        for parts in (1, 3):
            spec = spec_for(4, parts, "permutation", quanta=100, warmup=10)
            with runtime.capture() as tel:
                run_space(spec)
            tables[parts] = (
                {s: h.to_dict() for s, h in tel.journeys.stage_hist.items()},
                {k: h.to_dict() for k, h in tel.journeys.dim_hist.items()},
                [j.to_dict() for j in tel.journeys.detailed],
                (tel.journeys.completed, tel.journeys.dropped),
            )
        assert tables[1] == tables[3]

    def test_partitions_one_is_silent_serial(self):
        spec = spec_for(4, 1, "permutation", quanta=100, warmup=10)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got, info = run_space(spec)
        assert info.serial_fallback and info.fallback_reason == "partitions=1"
        assert not caught  # asking for 1 worker and getting 1 is not a lie
        assert_stats_identical(run_space_serial(spec), got)
