"""Kernel semantics: channels, processes, tracing, deadlock detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    BUSY,
    Channel,
    DeadlockError,
    Get,
    MEM_BLOCK,
    Put,
    RX_BLOCK,
    Simulator,
    Timeout,
    Trace,
    TX_BLOCK,
)
from repro.sim.errors import SimulationError


def run_sim(*gens, until=None, trace=None, raise_on_deadlock=True):
    sim = Simulator(trace=trace)
    procs = [sim.add_process(g, name=f"p{i}") for i, g in enumerate(gens)]
    sim.run(until=until, raise_on_deadlock=raise_on_deadlock)
    return sim, procs


class TestTimeout:
    def test_advances_clock(self):
        def proc():
            yield Timeout(10)
            yield Timeout(5)

        sim, _ = run_sim(proc())
        assert sim.now == 15

    def test_zero_delay_is_free(self):
        def proc():
            for _ in range(100):
                yield Timeout(0)

        sim, _ = run_sim(proc())
        assert sim.now == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1)

    def test_busy_state_recorded(self):
        trace = Trace()

        def proc():
            yield Timeout(7, BUSY)
            yield Timeout(3, MEM_BLOCK)

        sim = Simulator(trace=trace)
        sim.add_process(proc(), trace_key="k")
        sim.run()
        assert trace.time_in_state("k", BUSY) == 7
        assert trace.time_in_state("k", MEM_BLOCK) == 3


class TestChannelBasics:
    def test_put_get_same_cycle_zero_latency(self):
        sim = Simulator()
        ch = sim.channel("c")
        got = []

        def producer():
            yield Put(ch, 42)

        def consumer():
            v = yield Get(ch)
            got.append((v, sim.now))

        sim.add_process(producer())
        sim.add_process(consumer())
        sim.run()
        assert got == [(42, 0)]

    def test_latency_delays_visibility(self):
        sim = Simulator()
        ch = sim.channel("c", latency=5)
        got = []

        def producer():
            yield Put(ch, "x")

        def consumer():
            v = yield Get(ch)
            got.append((v, sim.now))

        sim.add_process(producer())
        sim.add_process(consumer())
        sim.run()
        assert got == [("x", 5)]

    def test_capacity_blocks_putter(self):
        sim = Simulator()
        ch = sim.channel("c", capacity=2)
        times = []

        def producer():
            for i in range(4):
                yield Put(ch, i)
                times.append(sim.now)

        def consumer():
            yield Timeout(100)
            for _ in range(4):
                yield Get(ch)

        sim.add_process(producer())
        sim.add_process(consumer())
        sim.run()
        # First two puts immediate; the rest wait for the consumer.
        assert times[0] == 0 and times[1] == 0
        assert times[2] >= 100 and times[3] >= 100

    def test_fifo_order(self):
        sim = Simulator()
        ch = sim.channel("c", capacity=3)
        got = []

        def producer():
            for i in range(10):
                yield Put(ch, i)

        def consumer():
            for _ in range(10):
                got.append((yield Get(ch)))

        sim.add_process(producer())
        sim.add_process(consumer())
        sim.run()
        assert got == list(range(10))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            Channel(latency=-1)


class TestChainThroughput:
    def test_chain_throughput(self):
        """A forwarding chain over capacity-1/latency-1 links sustains
        exactly one word per cycle -- the Raw static-network contract."""
        sim = Simulator()
        n_words = 200
        a = sim.channel("a", capacity=1, latency=1)
        b = sim.channel("b", capacity=1, latency=1)
        c = sim.channel("c", capacity=1, latency=1)
        out = []

        def source():
            for i in range(n_words):
                yield Put(a, i)

        def hop(src, dst):
            while True:
                v = yield Get(src)
                yield Put(dst, v)

        def sink():
            for _ in range(n_words):
                out.append((yield Get(c)))

        sim.add_process(source())
        sim.add_process(hop(a, b))
        sim.add_process(hop(b, c))
        sim.add_process(sink())
        sim.run(raise_on_deadlock=False)
        assert out == list(range(n_words))
        # n words through 3 hops: n + pipeline depth cycles.
        assert sim.now <= n_words + 5


class TestBlockingTrace:
    def test_rx_block_recorded(self):
        trace = Trace()
        sim = Simulator(trace=trace)
        ch = sim.channel("c")

        def slow_producer():
            yield Timeout(20)
            yield Put(ch, 1)

        def consumer():
            yield Get(ch)

        sim.add_process(slow_producer())
        sim.add_process(consumer(), trace_key="rx")
        sim.run()
        assert trace.time_in_state("rx", RX_BLOCK) == 20

    def test_tx_block_recorded(self):
        trace = Trace()
        sim = Simulator(trace=trace)
        ch = sim.channel("c", capacity=1)

        def producer():
            yield Put(ch, 1)
            yield Put(ch, 2)  # blocks: capacity 1, consumer slow

        def consumer():
            yield Timeout(30)
            yield Get(ch)
            yield Get(ch)

        sim.add_process(producer(), trace_key="tx")
        sim.add_process(consumer())
        sim.run()
        assert trace.time_in_state("tx", TX_BLOCK) == 30


class TestDeadlock:
    def test_deadlock_detected(self):
        sim = Simulator()
        a = sim.channel("a")
        b = sim.channel("b")

        def p1():
            yield Get(a)
            yield Put(b, 1)

        def p2():
            yield Get(b)
            yield Put(a, 1)

        sim.add_process(p1())
        sim.add_process(p2())
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert len(exc.value.blocked) == 2

    def test_deadlock_suppressible(self):
        sim = Simulator()
        a = sim.channel("a")

        def waiter():
            yield Get(a)

        sim.add_process(waiter())
        sim.run(raise_on_deadlock=False)  # no exception

    def test_until_does_not_raise(self):
        sim = Simulator()
        a = sim.channel("a")

        def waiter():
            yield Get(a)

        sim.add_process(waiter())
        assert sim.run(until=100) <= 100


class TestNonBlockingOps:
    def test_try_get_empty(self):
        sim = Simulator()
        ch = sim.channel("c")
        results = []

        def prober():
            results.append(sim.try_get(ch))
            yield Timeout(1)

        sim.add_process(prober())
        sim.run()
        assert results == [(False, None)]

    def test_try_get_after_put(self):
        sim = Simulator()
        ch = sim.channel("c")
        results = []

        def producer():
            yield Put(ch, 7)

        def prober():
            yield Timeout(1)
            results.append(sim.try_get(ch))

        sim.add_process(producer())
        sim.add_process(prober())
        sim.run()
        assert results == [(True, 7)]

    def test_peek_does_not_consume(self):
        sim = Simulator()
        ch = sim.channel("c")
        results = []

        def producer():
            yield Put(ch, 9)

        def prober():
            yield Timeout(1)
            results.append(sim.peek(ch))
            results.append(sim.try_get(ch))

        sim.add_process(producer())
        sim.add_process(prober())
        sim.run()
        assert results == [(True, 9), (True, 9)]

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        ch = sim.channel("c", capacity=1)
        results = []

        def prober():
            results.append(sim.try_put(ch, 1))
            results.append(sim.try_put(ch, 2))
            yield Timeout(1)

        sim.add_process(prober())
        sim.run()
        assert results == [True, False]

    def test_try_put_wakes_getter(self):
        sim = Simulator()
        ch = sim.channel("c")
        got = []

        def getter():
            got.append((yield Get(ch)))

        def putter():
            yield Timeout(5)
            assert sim.try_put(ch, "v")

        sim.add_process(getter())
        sim.add_process(putter())
        sim.run()
        assert got == ["v"]


class TestProcessLifecycle:
    def test_result_captured(self):
        def proc():
            yield Timeout(1)
            return "done"

        sim = Simulator()
        p = sim.add_process(proc())
        sim.run()
        assert not p.alive
        assert p.result == "done"

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.add_process(lambda: None)

    def test_unknown_command_rejected(self):
        def proc():
            yield "not a command"

        sim = Simulator()
        sim.add_process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_resumable(self):
        def proc():
            for _ in range(10):
                yield Timeout(10)

        sim = Simulator()
        sim.add_process(proc())
        sim.run(until=35)
        assert sim.now == 35
        sim.run()
        assert sim.now == 100


@given(
    values=st.lists(st.integers(), min_size=1, max_size=50),
    capacity=st.integers(min_value=1, max_value=8),
    latency=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_channel_preserves_order_and_content(values, capacity, latency):
    """Property: any channel delivers exactly the put sequence, in order."""
    sim = Simulator()
    ch = sim.channel("c", capacity=capacity, latency=latency)
    got = []

    def producer():
        for v in values:
            yield Put(ch, v)

    def consumer():
        for _ in values:
            got.append((yield Get(ch)))

    sim.add_process(producer())
    sim.add_process(consumer())
    sim.run(raise_on_deadlock=False)
    assert got == values


@given(
    delays=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=20)
)
@settings(max_examples=50, deadline=None)
def test_clock_sums_timeouts(delays):
    def proc():
        for d in delays:
            yield Timeout(d)

    sim = Simulator()
    sim.add_process(proc())
    sim.run()
    assert sim.now == sum(delays)


class TestBlockedReport:
    """A bounded run that drains with stuck processes must be inspectable
    (with ``until`` set the kernel returns instead of raising, which can
    silently mask a real deadlock)."""

    def test_rx_blocked_process_is_reported(self):
        def stuck(ch):
            yield Get(ch)  # nothing is ever put

        sim = Simulator()
        ch = sim.channel("hdr_in", capacity=1)
        sim.add_process(stuck(ch), name="egress0")
        sim.run(until=100)
        assert sim.blocked_report() == [
            {"name": "egress0", "state": RX_BLOCK, "channel": "hdr_in", "since": 0}
        ]

    def test_tx_blocked_process_is_reported(self):
        def producer(ch):
            yield Timeout(5)
            yield Put(ch, 1)  # fills the only slot
            yield Put(ch, 2)  # blocks forever: no consumer

        sim = Simulator()
        ch = sim.channel("body", capacity=1)
        sim.add_process(producer(ch), name="ingress0")
        sim.run(until=100)
        (entry,) = sim.blocked_report()
        assert entry["name"] == "ingress0"
        assert entry["state"] == TX_BLOCK
        assert entry["channel"] == "body"
        assert entry["since"] == 5

    def test_unnamed_channel_reports_none(self):
        def stuck(ch):
            yield Get(ch)

        sim = Simulator()
        ch = sim.channel(capacity=1)
        sim.add_process(stuck(ch), name="p")
        sim.run(until=10)
        assert sim.blocked_report()[0]["channel"] is None

    def test_clean_drain_reports_nothing(self):
        def proc():
            yield Timeout(3)

        sim = Simulator()
        sim.add_process(proc())
        sim.run(until=100)
        assert sim.blocked_report() == []

    def test_cutoff_with_pending_events_reports_nothing(self):
        # Stopped by the horizon, not drained: nothing is stuck.
        def ticker():
            while True:
                yield Timeout(10)

        sim = Simulator()
        sim.add_process(ticker(), name="t")
        sim.run(until=35)
        assert sim.blocked_report() == []

    def test_report_resets_between_runs(self):
        def stuck(ch):
            yield Get(ch)

        def rescuer(ch):
            yield Timeout(1)
            yield Put(ch, 42)

        sim = Simulator()
        ch = sim.channel("c", capacity=1)
        sim.add_process(stuck(ch), name="s")
        sim.run(until=10)
        assert len(sim.blocked_report()) == 1
        sim.add_process(rescuer(ch), name="r")
        sim.run(until=20)
        assert sim.blocked_report() == []

    def test_unbounded_run_still_raises(self):
        def stuck(ch):
            yield Get(ch)

        sim = Simulator()
        ch = sim.channel("c", capacity=1)
        sim.add_process(stuck(ch), name="s")
        with pytest.raises(DeadlockError):
            sim.run()
        assert len(sim.blocked_report()) == 1


class TestRunUntilContract:
    """The documented ``run(until=...)`` contract (see the kernel's
    :meth:`Simulator.run` docstring): the clock stops at ``until`` only
    when events remain beyond it; a drained queue leaves the clock at
    the last executed event; the clock never moves backwards."""

    def test_drained_early_clock_stays_at_last_event(self):
        def proc():
            yield Timeout(5)

        sim = Simulator()
        sim.add_process(proc())
        assert sim.run(until=100) == 5
        assert sim.now == 5  # NOT advanced to 100: nothing happened after 5

    def test_cutoff_clock_stops_exactly_at_until(self):
        def proc():
            while True:
                yield Timeout(7)

        sim = Simulator()
        sim.add_process(proc())
        assert sim.run(until=10) == 10
        assert sim.now == 10

    def test_event_exactly_at_until_executes(self):
        seen = []

        def proc():
            yield Timeout(10)
            seen.append(True)
            yield Timeout(10)
            seen.append(True)

        sim = Simulator()
        sim.add_process(proc())
        sim.run(until=10)
        assert seen == [True]

    def test_until_at_or_before_now_is_noop(self):
        def proc():
            while True:
                yield Timeout(5)

        sim = Simulator()
        sim.add_process(proc())
        sim.run(until=20)
        assert sim.now == 20
        assert sim.run(until=20) == 20  # at now: no-op
        assert sim.run(until=3) == 20  # before now: clock never reverses
        assert sim.now == 20

    def test_drained_early_with_blocked_does_not_raise(self):
        """Bounded runs report stuck processes instead of raising --
        the pipeline may simply have outlived its sources."""

        def stuck(ch):
            yield Timeout(4)
            yield Get(ch)

        sim = Simulator()
        ch = sim.channel("line", capacity=1)
        sim.add_process(stuck(ch), name="sink")
        assert sim.run(until=1000) == 4  # drained at the Get, no error
        assert sim.blocked_report() == [
            {"name": "sink", "state": RX_BLOCK, "channel": "line", "since": 4}
        ]

    def test_resumable_across_many_bounded_runs(self):
        ticks = []

        def proc():
            while True:
                yield Timeout(10)
                ticks.append(True)

        sim = Simulator()
        sim.add_process(proc())
        for horizon in (5, 15, 25, 100):
            sim.run(until=horizon)
            assert sim.now == horizon
        assert len(ticks) == 10
