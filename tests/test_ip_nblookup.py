"""Non-blocking lookup engine (section 8.2's multithreading equivalence)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.nblookup import LookupEngine


class TestValidation:
    def test_parameters_checked(self):
        with pytest.raises(ValueError):
            LookupEngine(visits_per_lookup=0)
        with pytest.raises(ValueError):
            LookupEngine(mem_latency_cycles=0)
        with pytest.raises(ValueError):
            LookupEngine(max_outstanding=0)
        with pytest.raises(ValueError):
            LookupEngine().simulate(0)


class TestBlockingBaseline:
    def test_serial_cost(self):
        eng = LookupEngine(visits_per_lookup=3, mem_latency_cycles=54, issue_cycles=4)
        res = eng.simulate(500)
        assert res.cycles_per_lookup == pytest.approx(3 * (54 + 4), rel=0.01)

    def test_matches_bound(self):
        eng = LookupEngine(max_outstanding=1)
        assert eng.simulate(500).cycles_per_lookup == pytest.approx(
            eng.bound_cycles_per_lookup(), rel=0.01
        )


class TestNonBlocking:
    @pytest.mark.parametrize("window", [2, 4, 8])
    def test_linear_speedup_before_issue_bound(self, window):
        eng = LookupEngine(max_outstanding=window)
        base = LookupEngine(max_outstanding=1).simulate(1000).cycles_per_lookup
        got = eng.simulate(1000).cycles_per_lookup
        assert base / got == pytest.approx(window, rel=0.03)

    def test_issue_bound_caps_speedup(self):
        eng = LookupEngine(
            visits_per_lookup=3, mem_latency_cycles=54, issue_cycles=4,
            max_outstanding=64,
        )
        res = eng.simulate(2000)
        # Cannot beat visits x issue cycles per lookup.
        assert res.cycles_per_lookup >= 3 * 4 * 0.99
        assert eng.speedup_over_blocking() == pytest.approx(58 / 4, rel=0.01)

    def test_beats_ixp1200_rate_with_modest_window(self):
        """The section 8.2 punchline: 8 outstanding reads push one tile
        past the IXP1200's 3.5 Mpps forwarding rate."""
        from repro.raw import costs

        res = LookupEngine(max_outstanding=8).simulate(2000)
        mlps = costs.CLOCK_HZ / res.cycles_per_lookup / 1e6
        assert mlps > 3.5


@given(
    visits=st.integers(1, 6),
    latency=st.integers(5, 100),
    issue=st.integers(1, 8),
    window=st.integers(1, 32),
)
@settings(max_examples=60, deadline=None)
def test_simulation_matches_closed_form(visits, latency, issue, window):
    """Property: the event simulation converges to the analytic bound."""
    eng = LookupEngine(visits, latency, issue, window)
    res = eng.simulate(600)
    assert res.cycles_per_lookup == pytest.approx(
        eng.bound_cycles_per_lookup(), rel=0.06
    )
