"""Clos composition of 4-port Rotating Crossbars (section 8.5)."""

import numpy as np
import pytest

from repro.core.compose import ClosFabric, clos_vs_single_ring
from repro.core.fabricsim import saturated_permutation, saturated_uniform


class TestConstruction:
    def test_port_count(self):
        assert ClosFabric(k=4).num_ports == 16
        assert ClosFabric(k=2).num_ports == 4

    def test_k_validated(self):
        with pytest.raises(ValueError):
            ClosFabric(k=1)

    def test_destination_validated(self):
        clos = ClosFabric(k=2)
        with pytest.raises(ValueError):
            clos.run(lambda p: (9, 16), quanta=1)


class TestConservation:
    def test_words_match_packets(self):
        rng = np.random.default_rng(0)
        clos = ClosFabric()
        stats = clos.run(
            saturated_uniform(64, rng, n=16, exclude_self=True),
            quanta=600,
            warmup_quanta=60,
        )
        assert stats.delivered_packets > 1000
        # Single-fragment packets: words == packets * 64 exactly.
        assert stats.delivered_words == stats.delivered_packets * 64

    def test_permutation_delivers_to_right_ports(self):
        clos = ClosFabric()
        stats = clos.run(
            saturated_permutation(64, shift=5, n=16), quanta=400, warmup_quanta=40
        )
        # every port receives (its shifted source saturates it)
        assert all(c > 0 for c in stats.per_port_packets)

    def test_fragmentation_through_stages(self):
        clos = ClosFabric(max_quantum_words=64)
        stats = clos.run(
            saturated_permutation(256, shift=8, n=16), quanta=800, warmup_quanta=80
        )
        assert stats.delivered_packets > 50


class TestScalingClaim:
    def test_clos_beats_ring_on_antipodal(self):
        ring, clos = clos_vs_single_ring(num_ports=16, words=256, quanta=800)
        assert clos > 3.0 * ring

    def test_ring_fine_on_neighbor(self):
        ring, clos = clos_vs_single_ring(num_ports=16, words=256, quanta=800, shift=1)
        # Neighbor traffic: the single ring is already near line rate;
        # the Clos need not beat it (it pays pipeline overheads).
        assert ring > 90
        assert clos > 0.6 * ring

    def test_square_port_count_required(self):
        with pytest.raises(ValueError):
            clos_vs_single_ring(num_ports=8, quanta=10)


class TestAdaptiveRouting:
    def test_hotspot_on_middle_resolves(self):
        """All flows initially hash to the same middle crossbar; the
        retry-based reselection must spread them so throughput stays
        well above a single middle's capacity."""
        clos = ClosFabric()
        # shift=4: dest = src+4 -> dest % 4 constant per input crossbar,
        # so naive hashing piles onto few middles; adaptivity spreads it.
        stats = clos.run(
            saturated_permutation(256, shift=4, n=16), quanta=800, warmup_quanta=80
        )
        assert stats.gbps > 50
