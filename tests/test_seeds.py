"""Pin every derived-seed convention in :mod:`repro.seeds` bit-for-bit.

These literals are load-bearing: committed golden results (sweep rows,
bench gates, resilience bounds) were produced under them.  If any
assertion here fails, derived seeds changed and every seeded artifact
in the repo silently shifted -- fix the regression, do not update the
numbers.
"""

import numpy as np
import pytest

from repro.seeds import (
    COUNTER_SEED_MASK,
    SEED_RANGE,
    SPEC_SEED_MASK,
    cell_seed,
    coerce_seed,
    counter_seed,
    spec_seed,
    world_seed,
)


class TestCellSeed:
    def test_pinned_values(self):
        # Exactly the historical repro.sweep.cell_seed outputs.
        assert cell_seed(0, {}) == 598130499
        assert cell_seed(0, {"ports": 8}) == 1534824687
        assert cell_seed(123, {"quantum_words": 512, "traffic": "imix_onoff"}) == 1973493854
        assert cell_seed(2026, {"ports": 16, "pattern": "uniform"}) == 1001951500

    def test_reexported_from_sweep(self):
        # sweep.py was the historical home; callers importing from there
        # must keep getting the same function.
        from repro import sweep

        assert sweep.cell_seed is cell_seed

    def test_order_independent(self):
        a = cell_seed(5, {"ports": 8, "quantum_words": 256})
        b = cell_seed(5, {"quantum_words": 256, "ports": 8})
        assert a == b

    def test_in_range(self):
        assert 0 <= cell_seed(2**40, {"x": "y"}) < SEED_RANGE


class TestWorldSeed:
    def test_world_zero_is_base(self):
        # The many-worlds contract: world 0 IS today's scalar run.
        for base in (0, 1, 42, 2**31 - 1):
            assert world_seed(base, 0) == base

    def test_pinned_values(self):
        assert [world_seed(42, w) for w in range(4)] == [
            42, 1043230517, 1520221609, 1557285338,
        ]
        assert [world_seed(0, w) for w in range(4)] == [
            0, 194214676, 1176713668, 729041358,
        ]

    def test_distinct_and_in_range(self):
        seen = {world_seed(7, w) for w in range(1000)}
        assert len(seen) == 1000
        assert all(0 <= s < SEED_RANGE for s in seen)

    def test_negative_world_raises(self):
        with pytest.raises(ValueError):
            world_seed(0, -1)


class TestCoerceSeed:
    def test_int_passthrough(self):
        assert coerce_seed(17) == 17

    def test_generator_draw(self):
        # Must keep drawing integers(0, 2**31) off the Generator, as the
        # historical arrivals._coerce_seed did.
        assert coerce_seed(np.random.default_rng(7)) == 2029167941


class TestStorageMasks:
    def test_spec_seed_matches_specmodel(self):
        from repro.traffic.model import SpecModel
        from repro.traffic.spec import resolve_traffic

        spec = resolve_traffic("imix")
        big = 2**64 + 12345
        assert SpecModel(spec, 4, seed=big).seed == spec_seed(big)
        assert spec_seed(big) == big & SPEC_SEED_MASK

    def test_counter_seed_matches_counter_source(self):
        from repro.core.fabricsim import CounterUniformSource

        big = 2**40 + 99
        assert CounterUniformSource(16, big, n=4).seed == counter_seed(big)
        assert counter_seed(big) == big & COUNTER_SEED_MASK

    def test_arrivals_use_coerce_seed(self):
        from repro.traffic.arrivals import Bernoulli, OnOff

        gen_seed = coerce_seed(np.random.default_rng(3))
        assert Bernoulli(0.5, seed=np.random.default_rng(3)).seed == gen_seed
        assert OnOff(seed=np.random.default_rng(3)).seed == gen_seed
