"""The Rotating Crossbar allocation rule.

The exhaustive tests sweep the *entire* 4-port configuration space
(5^4 x 4 = 2,500 points), so the invariants here are theorems about the
implementation, not samples: conflict-freedom, master-never-denied, and
output-uniqueness hold at every reachable point.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import Allocator
from repro.core.ring import CCW, CW, RingGeometry


def all_global_configs(n=4):
    header_values = (None,) + tuple(range(n))
    for headers in product(header_values, repeat=n):
        for token in range(n):
            yield headers, token


@pytest.fixture(scope="module")
def alloc4():
    return Allocator(RingGeometry(4))


class TestFig51:
    def test_worked_example(self, alloc4):
        a = alloc4.allocate([2, 3, 0, 1], token=0)
        assert a.num_granted == 4
        assert a.grants[0].path.direction == CW
        assert a.grants[1].path.direction == CCW
        assert a.grants[2].path.direction == CW
        assert a.grants[3].path.direction == CCW
        assert a.is_conflict_free()
        assert a.max_expansion == 2


class TestBasics:
    def test_empty_inputs(self, alloc4):
        a = alloc4.allocate([None] * 4, token=1)
        assert a.num_granted == 0
        assert not a.blocked

    def test_single_request(self, alloc4):
        a = alloc4.allocate([None, 2, None, None], token=0)
        assert set(a.grants) == {1}
        assert a.grants[1].dst == 2

    def test_self_destination_direct(self, alloc4):
        a = alloc4.allocate([0, None, None, None], token=0)
        assert a.grants[0].path.direction == "direct"
        assert a.grants[0].expansion == 0

    def test_output_contention_blocks_downstream(self, alloc4):
        # All want output 0; only the master-side first claimant wins.
        a = alloc4.allocate([0, 0, 0, 0], token=2)
        assert set(a.grants) == {2}
        assert a.blocked == {0, 1, 3}

    def test_token_decides_winner(self, alloc4):
        for token in range(4):
            a = alloc4.allocate([3, 3, 3, 3], token=token)
            assert set(a.grants) == {token}

    def test_request_validation(self, alloc4):
        with pytest.raises(ValueError):
            alloc4.allocate([0, 1, 2], token=0)
        with pytest.raises(ValueError):
            alloc4.allocate([0, 1, 2, 4], token=0)
        with pytest.raises(ValueError):
            alloc4.allocate([0, 1, 2, 3], token=4)

    def test_ccw_fallback_when_cw_taken(self, alloc4):
        # 0 -> 1 takes cw link 0; 3 -> 1 would be blocked at output...
        # use 3 -> 0: cw path is 3->0 (link cw3), free. Make it taken:
        # 2 -> 0 cw uses cw2, cw3; then 3 -> 1 cw needs cw3 (taken),
        # falls back to ccw (3->2->1).
        a = alloc4.allocate([None, None, 0, 1], token=2)
        assert a.grants[2].path.direction == CW
        assert a.grants[3].path.direction == CCW


class TestExhaustiveInvariants:
    def test_conflict_free_everywhere(self, alloc4):
        for headers, token in all_global_configs():
            a = alloc4.allocate(headers, token)
            assert a.is_conflict_free(), (headers, token)

    def test_master_never_denied(self, alloc4):
        """Section 5.4's fairness root: a requesting master always sends."""
        for headers, token in all_global_configs():
            assert alloc4.master_always_granted(headers, token), (headers, token)

    def test_granted_set_consistency(self, alloc4):
        for headers, token in all_global_configs():
            a = alloc4.allocate(headers, token)
            for src, grant in a.grants.items():
                assert headers[src] == grant.dst
                assert grant.path.src == src and grant.path.dst == grant.dst
            # blocked and granted partition the requesting inputs.
            requesting = {i for i in range(4) if headers[i] is not None}
            assert set(a.grants) | a.blocked == requesting
            assert not (set(a.grants) & a.blocked)

    def test_work_conserving_for_distinct_outputs(self, alloc4):
        """If all requested outputs are distinct, everyone is granted
        (single network suffices -- the section 5.3 sufficiency claim)."""
        from itertools import permutations

        for perm in permutations(range(4)):
            for token in range(4):
                a = alloc4.allocate(list(perm), token)
                assert a.num_granted == 4, (perm, token)


class TestSecondNetwork:
    def test_two_networks_never_grant_fewer(self):
        """More capacity can shift *which* inputs win (token order plus
        extra paths) but never shrinks the number of grants."""
        ring = RingGeometry(4)
        one = Allocator(ring, networks=1)
        two = Allocator(ring, networks=2)
        for headers, token in all_global_configs():
            g1 = one.allocate(headers, token)
            g2 = two.allocate(headers, token)
            assert g2.num_granted >= g1.num_granted, (headers, token)

    def test_networks_validated(self):
        with pytest.raises(ValueError):
            Allocator(RingGeometry(4), networks=3)


@given(
    n=st.integers(2, 8),
    token=st.integers(0, 7),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_invariants_generalize_to_n_ports(n, token, data):
    """Property: conflict-freedom and master priority hold for any N."""
    token = token % n
    headers = [
        data.draw(st.one_of(st.none(), st.integers(0, n - 1))) for _ in range(n)
    ]
    alloc = Allocator(RingGeometry(n))
    a = alloc.allocate(headers, token)
    assert a.is_conflict_free()
    if headers[token] is not None:
        assert token in a.grants
    # Outputs unique.
    outs = [g.dst for g in a.grants.values()]
    assert len(outs) == len(set(outs))
