"""Experiment harness: every table/figure regenerates with the paper's shape.

These run the same code the benchmarks run (smaller budgets) and assert
the *reproduction criteria*: who wins, by roughly what factor, where the
crossovers fall.  Absolute-value closeness is asserted where the phase
model is calibrated (Fig 7-1) and banded elsewhere.
"""

import pytest

from repro.experiments import (
    ablations,
    claims_ch2,
    compute_ext,
    fairness_qos,
    fig5_1,
    fig7_1,
    load_latency,
    lookup_ext,
    multicast_ext,
    multichip,
    scaling,
    table6_1,
)
from repro.experiments import paperdata


class TestFig71Peak:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_1.run_peak(quanta=800, click_packets=800)

    def test_sizes_within_16pct(self, result):
        for size, ref in paperdata.PEAK_GBPS.items():
            assert result.measured(f"{size}B") == pytest.approx(ref, rel=0.16)

    def test_headline_1024(self, result):
        assert result.measured("1024B") == pytest.approx(26.9, rel=0.02)
        assert result.measured("peak_mpps_1024B") == pytest.approx(3.3, rel=0.03)

    def test_click_bar(self, result):
        assert result.measured("click_64B") == pytest.approx(0.23, rel=0.12)

    def test_two_orders_over_click(self, result):
        assert result.measured("1024B") / result.measured("click_64B") > 100

    def test_monotone_in_size(self, result):
        series = [result.measured(f"{s}B") for s in sorted(paperdata.PEAK_GBPS)]
        assert series == sorted(series)

    def test_router_engine_agrees(self):
        fast = fig7_1.run_peak(sizes=(1024,), quanta=400, click_packets=200)
        slow = fig7_1.run_peak(
            sizes=(1024,), quanta=400, click_packets=200, engine="router"
        )
        assert slow.measured("1024B") == pytest.approx(
            fast.measured("1024B"), rel=0.02
        )


class TestFig71Average:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_1.run_average(quanta=2500, click_packets=400)

    def test_sizes_within_16pct(self, result):
        for size, ref in paperdata.AVG_GBPS.items():
            assert result.measured(f"{size}B") == pytest.approx(ref, rel=0.16)

    def test_avg_to_peak_near_69pct(self, result):
        assert result.measured("avg_to_peak_1024B") == pytest.approx(0.69, abs=0.04)


class TestTable61:
    @pytest.fixture(scope="class")
    def result(self):
        return table6_1.run()

    def test_global_space_exact(self, result):
        assert result.measured("global_space") == 2500
        assert result.measured("instr_per_naive_config") == pytest.approx(3.28, abs=0.01)

    def test_minimization_order_of_paper(self, result):
        assert 20 <= result.measured("minimized_configs") <= 48
        assert result.measured("reduction_factor") > 50

    def test_fits_imem(self, result):
        assert result.measured("fits_switch_imem") is True


class TestFig51:
    def test_exact_reproduction(self):
        result = fig5_1.run()
        for row in result.rows:
            assert row["measured"] == row["paper"], row


class TestAblations:
    def test_second_network_no_gain(self):
        result = ablations.run_second_network(quanta=800)
        assert result.measured("permutation_speedup") == pytest.approx(1.0, abs=0.01)
        assert result.measured("uniform_speedup") == pytest.approx(1.0, abs=0.06)

    def test_quantum_size_monotone(self):
        result = ablations.run_quantum_size(quanta=800)
        series = [result.measured(f"quantum_{q}w") for q in (16, 32, 64, 128, 256)]
        assert series == sorted(series)
        assert result.measured("full_over_smallest") > 2.5

    def test_pipelining_helps_small_packets(self):
        result = ablations.run_pipelining(quanta=800)
        assert result.measured("speedup_from_pipelining") > 1.4


class TestClaimsCh2:
    def test_hol_vs_voq(self):
        result = claims_ch2.run_hol_voq(ports=(16,), slots=6000, warmup=600)
        assert result.measured("fifo_N16") == pytest.approx(0.586, abs=0.05)
        assert result.measured("voq_islip_N16") > 0.95
        assert result.measured("output_queued_N16") > 0.97

    def test_cells_vs_packets(self):
        result = claims_ch2.run_cells_vs_packets(slots=8000)
        assert result.measured("cell_mode_util") > 0.85
        assert result.measured("variable_length_util") == pytest.approx(0.60, abs=0.08)
        assert result.measured("cell_over_variable") > 1.3

    def test_islip_iterations_reduce_delay(self):
        result = claims_ch2.run_islip_iterations(slots=5000, warmup=500)
        assert result.measured("islip_4it_delay") < result.measured("islip_1it_delay")


class TestScaling:
    def test_neighbor_scales_antipodal_capped(self):
        result = scaling.run(port_counts=(4, 8), quanta=800)
        assert result.measured("neighbor_gbps_N8") == pytest.approx(
            2 * result.measured("neighbor_gbps_N4"), rel=0.05
        )
        assert result.measured("antipodal_gbps_N8") == pytest.approx(
            result.measured("antipodal_gbps_N4"), rel=0.1
        )


class TestFairnessQos:
    def test_starvation_bound(self):
        result = fairness_qos.run_fairness(quanta=1500)
        assert result.measured("worst_starvation_gap") == 3
        assert result.measured("jains_index") == pytest.approx(1.0, abs=0.01)

    def test_weighted_shares(self):
        result = fairness_qos.run_qos(quanta=2800)
        assert result.measured("weighted_share_port0") == pytest.approx(4 / 7, abs=0.02)
        assert result.measured("weighted_min_share") == pytest.approx(1 / 7, abs=0.02)


class TestMulticast:
    def test_fabric_beats_ingress_replication(self):
        result = multicast_ext.run(fanouts=(3,), quanta=1200)
        assert result.measured("fabric_gain_F3") > 1.2


class TestLookup:
    def test_compressed_faster_and_bounded(self):
        result = lookup_ext.run(table_sizes=(5000,), lookups=800)
        assert result.measured("compressed_mlookups_per_s_5000") > result.measured(
            "trie_mlookups_per_s_5000"
        )
        assert result.measured("compressed_max_visits_le3_5000") is True


class TestMultichip:
    def test_clos_recovers_antipodal_bandwidth(self):
        result = multichip.run(quanta=600)
        assert result.measured("antipodal_clos_gain") > 3.0
        # Neighbor traffic: the big ring is already fine.
        assert result.measured("neighbor_single_ring_gbps") > 90


class TestLoadLatency:
    def test_knee_at_fabric_capacity(self):
        result = load_latency.run(loads=(0.3, 0.95), packets_per_port=150)
        assert result.measured("mean_us_at_0.3") < result.measured("mean_us_at_0.95")
        assert result.measured("top_load_goodput_over_capacity") > 0.85


class TestCompute:
    def test_costs_and_roundtrip(self):
        result = compute_ext.run(quanta=500)
        assert result.measured("byteswap_relative") == pytest.approx(1.0, abs=0.01)
        assert result.measured("xor_cipher_relative") == pytest.approx(0.5, abs=0.02)
        assert result.measured("cipher_roundtrip_ok") is True
