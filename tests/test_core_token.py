"""Rotating and weighted tokens."""

import pytest

from repro.core.token import RotatingToken, WeightedToken


class TestRotatingToken:
    def test_rotation(self):
        t = RotatingToken(4)
        assert t.master == 0
        assert [t.advance() for _ in range(5)] == [1, 2, 3, 0, 1]
        assert t.rotations == 5

    def test_priority_order(self):
        t = RotatingToken(4, start=2)
        assert t.priority_order() == [2, 3, 0, 1]

    def test_max_wait(self):
        assert RotatingToken(4).max_wait_quanta() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RotatingToken(0)
        with pytest.raises(ValueError):
            RotatingToken(4, start=4)


class TestWeightedToken:
    def test_holds_master_for_weight(self):
        t = WeightedToken([3, 1])
        seq = [t.master] + [t.advance() for _ in range(7)]
        assert seq == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_share(self):
        t = WeightedToken([4, 1, 1, 1])
        assert t.share(0) == pytest.approx(4 / 7)
        assert t.share(1) == pytest.approx(1 / 7)

    def test_max_wait(self):
        assert WeightedToken([4, 1, 1, 1]).max_wait_quanta() == 6

    def test_equal_weights_degenerate_to_plain(self):
        w = WeightedToken([1, 1, 1, 1])
        p = RotatingToken(4)
        for _ in range(10):
            assert w.advance() == p.advance()

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedToken([])
        with pytest.raises(ValueError):
            WeightedToken([1, 0])
