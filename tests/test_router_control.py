"""Control plane: route updates while the data plane forwards."""

import numpy as np
import pytest

from repro.ip.addr import Prefix
from repro.ip.lookup import RoutingTable
from repro.router import NetworkProcessor, RawRouter, RouteUpdate
from repro.traffic import FixedSize, PacketFactory, Saturated, UniformDestinations, Workload


def running_router(seed=0, table=None):
    rng = np.random.default_rng(seed)
    router = RawRouter(table=table, warmup_cycles=0)
    workload = Workload(
        UniformDestinations(4, rng, exclude_self=True), FixedSize(256), Saturated()
    )
    router.attach_saturated(workload, PacketFactory(4, rng))
    return router


class TestRouteUpdate:
    def test_withdraw_flag(self):
        p = Prefix.parse("10.0.0.0/8")
        assert RouteUpdate(0, p, None).is_withdraw
        assert not RouteUpdate(0, p, 2).is_withdraw


class TestNetworkProcessor:
    def test_updates_applied_in_order_at_time(self):
        router = running_router()
        p1 = Prefix.parse("10.0.0.0/8")
        p2 = Prefix.parse("20.0.0.0/8")
        np_ = NetworkProcessor(
            router,
            [RouteUpdate(5_000, p1, 1), RouteUpdate(15_000, p2, 2)],
        )
        np_.attach()
        router.run(max_cycles=30_000)
        assert np_.log.count() == 2
        (t1, u1), (t2, u2) = np_.log.applied
        assert t1 >= 5_000 and t2 >= 15_000 and t1 < t2
        assert router.table.lookup(p1.address) == 1
        assert router.table.lookup(p2.address) == 2

    def test_withdraw_removes_route(self):
        table = RoutingTable.uniform_split(4)
        spec = Prefix.parse("10.0.0.0/8")
        table.add_route(spec, 3)
        router = running_router(table=table)
        NetworkProcessor(router, [RouteUpdate(4_000, spec, None)]).attach()
        router.run(max_cycles=20_000)
        # Falls back to the covering /2 route.
        assert router.table.lookup(spec.address) == 0

    def test_traffic_keeps_flowing_through_updates(self):
        router = running_router()
        updates = [
            RouteUpdate(2_000 * i, Prefix(i << 24, 8), i % 4) for i in range(1, 9)
        ]
        np_ = NetworkProcessor(router, updates)
        np_.attach()
        res = router.run(max_cycles=40_000)
        assert np_.log.count() == 8
        assert res.packets > 200  # the data plane never stalled

    def test_delivery_matches_table_at_lookup_time(self):
        """Shift a prefix from port 1 to port 2 mid-run; every packet to
        that prefix must exit on whichever port the table said when the
        Lookup Processor resolved it (no torn/misrouted packets)."""
        table = RoutingTable.uniform_split(4)
        moved = Prefix.parse("64.0.0.0/8")  # inside port 1's quarter
        table.add_route(moved, 1)
        rng = np.random.default_rng(1)
        # Shallow input queues: with all traffic serialized onto one
        # output, deep queues would hold a pre-flip backlog longer than
        # the run.
        router = RawRouter(table=table, warmup_cycles=0, input_queue_frags=4)

        class MovedPrefixWorkload:
            """All traffic targets the moved prefix."""

            n = 4

            def next_dest(self, port):
                return 1  # nominal; the factory address decides truth

        factory = PacketFactory(4, rng)
        delivered = []
        real_make = factory.make

        def make_to_moved(inp, outp, size):
            pkt = real_make(inp, outp, size)
            pkt.dst = moved.random_member(rng)
            pkt.fill_checksum()
            delivered.append(pkt)
            return pkt

        factory.make = make_to_moved
        workload = Workload(MovedPrefixWorkload(), FixedSize(256), Saturated())
        router.attach_saturated(workload, factory)
        flip_at = 15_000
        NetworkProcessor(router, [RouteUpdate(flip_at, moved, 2)]).attach()
        router.run(max_cycles=80_000)
        done = [p for p in delivered if p.departure_cycle >= 0]
        assert len(done) > 50
        assert {p.output_port for p in done} == {1, 2}
        for pkt in done:
            # Packets looked up well before the flip must use port 1,
            # well after it port 2 (the flip applies within ~1k cycles;
            # queueing separates lookup from arrival by a few quanta).
            if pkt.arrival_cycle < flip_at - 4_000:
                assert pkt.output_port == 1, pkt.arrival_cycle
            elif pkt.arrival_cycle > flip_at + 4_000:
                assert pkt.output_port == 2, pkt.arrival_cycle
