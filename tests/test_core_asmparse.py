"""Executing the compile-time scheduler's emitted assembly.

The round trip chapter 6 promises: headers + token -> jump table ->
per-tile listings -> (parse) -> route instructions -> words taking the
scheduled paths on real channels.
"""

import pytest

from repro.core.asmparse import (
    AsmParseError,
    listing_word_counts,
    make_resolver,
    parse_listing,
)
from repro.core.ring import RingGeometry
from repro.core.scheduler import CompileTimeScheduler, default_port_maps
from repro.raw.switchproc import RouteInstruction, SwitchProcessor
from repro.sim.kernel import Get, Put, Simulator


@pytest.fixture(scope="module")
def schedule():
    return CompileTimeScheduler(RingGeometry(4)).compile()


class TestParser:
    def test_simple_route(self):
        sim = Simulator()
        a, b = sim.channel("a"), sim.channel("b")
        prog = parse_listing(
            ["  route $cWi->$cEo  ; x5 steady"],
            make_resolver({"$cWi": a, "$cEo": b}),
        )
        assert len(prog) == 1
        assert prog[0].repeat == 5
        assert prog[0].moves == ((a, b),)

    def test_multi_move_line(self):
        sim = Simulator()
        chans = {n: sim.channel(n) for n in ("$cWi", "$cEo", "$cSi", "$cNo")}
        prog = parse_listing(
            ["  route $cWi->$cEo, route $cSi->$cNo"],
            make_resolver(chans),
        )
        assert len(prog[0].moves) == 2

    def test_nop_and_labels_and_jump(self):
        prog = parse_listing(
            [
                "cfg3:  ; out<-None cw<-None ccw<-None exp=0",
                "  nop  ; x7 idle quantum",
                "  j $swPC  ; return to dispatch",
                "  route $cWi->$cEo  ; unreachable after j",
            ],
            make_resolver({}),
        )
        assert len(prog) == 1
        assert prog[0].moves == () and prog[0].repeat == 7

    def test_rejects_bad_direction(self):
        sim = Simulator()
        chans = {n: sim.channel(n) for n in ("$cWi", "$cEo")}
        with pytest.raises(AsmParseError):
            parse_listing(["  route $cEo->$cWi"], make_resolver(chans))

    def test_rejects_junk(self):
        with pytest.raises(AsmParseError):
            parse_listing(["  frobnicate $cWi"], make_resolver({}))
        with pytest.raises(AsmParseError):
            parse_listing(["  route $cWi->$cEo garbage"], make_resolver({}))

    def test_unbound_port(self):
        with pytest.raises(AsmParseError):
            parse_listing(["  route $cWi->$cEo"], make_resolver({}))


class TestExecuteGeneratedCode:
    def test_single_flow_end_to_end(self, schedule):
        """Compile (2, None, None, None) @ token 0 -- a 2-hop clockwise
        flow -- parse each ring tile's listing, execute all three on one
        simulator, and watch the words arrive in order at output 2."""
        quantum = 8
        ids, alloc = schedule.lookup((None if False else 2, None, None, None), 0)
        port_maps = default_port_maps()
        sim = Simulator()
        # Fabric channels: ingress->t0, ring cw links, t2->egress.
        in0 = sim.channel("in0", capacity=4, latency=1)
        cw = {
            i: sim.channel(f"cw{i}", capacity=4, latency=1) for i in range(4)
        }
        out2 = sim.channel("out2", capacity=4, latency=1)
        # Bind each tile's mnemonics to the shared channels.
        resolvers = {
            0: {"$cWi": in0, "$cEo": cw[0]},
            1: {"$cWi": cw[0], "$cSo": cw[1]},
            2: {"$cNi": cw[1], "$cSo": out2},
        }
        # Confirm the mnemonic bindings against the real port maps
        # (tile 5 feeds east to 6, 6 south to 10, 10 south to egress 14).
        assert port_maps[0].client_port("in") == "$cWi"
        assert port_maps[0].server_port("cwnext") == "$cEo"
        assert port_maps[1].client_port("cwprev") == "$cWi"
        assert port_maps[1].server_port("cwnext") == "$cSo"
        assert port_maps[2].client_port("cwprev") == "$cNi"
        assert port_maps[2].server_port("out") == "$cSo"

        got = []

        def feeder():
            for i in range(quantum):
                yield Put(in0, 100 + i)

        def collector():
            for _ in range(quantum):
                got.append((yield Get(out2)))

        sim.add_process(feeder(), "feeder")
        for ring_index in (0, 1, 2):
            listing = schedule.assembly_for(
                ids[ring_index], port_maps[ring_index], quantum_words=quantum
            )
            program = parse_listing(
                listing, make_resolver(resolvers[ring_index])
            )
            sp = SwitchProcessor(ring_index)
            sim.add_process(sp.execute(iter(program)), f"sw{ring_index}")
        sim.add_process(collector(), "collector")
        sim.run(raise_on_deadlock=False)
        assert got == [100 + i for i in range(quantum)]
        # 8 words through 3 hops: pipeline depth on top of the stream.
        assert sim.now <= quantum + 8

    def test_word_counts_match_config(self, schedule):
        """Statically: each tile's parsed body moves exactly the words
        its local configuration owes (quantum per active server, spread
        across fill/steady/drain)."""
        quantum = 16
        ids, _ = schedule.lookup((2, 3, 0, 1), 0)
        pm = default_port_maps()
        sim = Simulator()
        for ring_index in range(4):
            listing = schedule.assembly_for(ids[ring_index], pm[ring_index], quantum)
            names = {
                n: sim.channel(f"t{ring_index}{n}")
                for n in ("$cNi", "$cSi", "$cEi", "$cWi", "$cNo", "$cSo", "$cEo", "$cWo")
            }
            program = parse_listing(listing, make_resolver(names))
            cfg = schedule.config(ids[ring_index])
            moved = listing_word_counts(program)
            assert moved == cfg.servers_in_use() * quantum

    def test_every_config_parses(self, schedule):
        """All 27 minimized configurations produce parseable listings on
        every crossbar tile."""
        sim = Simulator()
        for pm in default_port_maps():
            names = {
                n: sim.channel(n + str(pm.tile))
                for n in ("$cNi", "$cSi", "$cEi", "$cWi", "$cNo", "$cSo", "$cEo", "$cWo")
            }
            resolver = make_resolver(names)
            for cid in range(schedule.minimization.minimized_size):
                listing = schedule.assembly_for(cid, pm, quantum_words=32)
                parse_listing(listing, resolver)  # must not raise