"""Grid geometry and the Fig 4-1 / 7-2 port mapping."""

import pytest

from repro.raw.layout import (
    CROSSBAR_RING,
    Direction,
    EGRESS_TILES,
    GRID_WIDTH,
    INGRESS_TILES,
    LOOKUP_TILES,
    NUM_TILES,
    ROUTER_LAYOUT,
    manhattan,
    neighbor,
    port_of_tile,
    ring_neighbors_are_adjacent,
    tile_id,
    tile_xy,
)


class TestGrid:
    def test_xy_roundtrip(self):
        for t in range(NUM_TILES):
            x, y = tile_xy(t)
            assert tile_id(x, y) == t

    def test_bad_tile(self):
        with pytest.raises(ValueError):
            tile_xy(16)
        with pytest.raises(ValueError):
            tile_xy(-1)

    def test_bad_coords(self):
        with pytest.raises(ValueError):
            tile_id(4, 0)
        with pytest.raises(ValueError):
            tile_id(0, -1)

    def test_neighbors(self):
        assert neighbor(0, Direction.EAST) == 1
        assert neighbor(0, Direction.SOUTH) == 4
        assert neighbor(0, Direction.NORTH) is None
        assert neighbor(0, Direction.WEST) is None
        assert neighbor(5, Direction.NORTH) == 1
        assert neighbor(15, Direction.EAST) is None

    def test_neighbor_symmetry(self):
        for t in range(NUM_TILES):
            for d in (Direction.NORTH, Direction.SOUTH, Direction.EAST, Direction.WEST):
                n = neighbor(t, d)
                if n is not None:
                    assert neighbor(n, d.opposite()) == t

    def test_manhattan(self):
        assert manhattan(0, 15) == 6
        assert manhattan(5, 6) == 1
        assert manhattan(3, 3) == 0

    def test_opposite(self):
        assert Direction.NORTH.opposite() is Direction.SOUTH
        assert Direction.PROC.opposite() is Direction.PROC


class TestRouterLayout:
    def test_sixteen_distinct_tiles(self):
        tiles = [t for layout in ROUTER_LAYOUT for t in layout.tiles]
        assert sorted(tiles) == list(range(NUM_TILES))

    def test_ingress_tiles_match_fig7_3_caption(self):
        # "gray on tiles 4, 7, 8, and 11 means that the input ports are
        # blocked by the crossbar"
        assert set(INGRESS_TILES) == {4, 7, 8, 11}

    def test_crossbar_is_center_ring(self):
        assert set(CROSSBAR_RING) == {5, 6, 9, 10}

    def test_ring_neighbors_adjacent(self):
        assert ring_neighbors_are_adjacent()

    def test_functional_units_adjacent_to_crossbar(self):
        """Ingress and egress tiles sit next to their crossbar tile, so
        in/out links are single static-network hops."""
        for layout in ROUTER_LAYOUT:
            assert manhattan(layout.ingress, layout.crossbar) == 1
            assert manhattan(layout.egress, layout.crossbar) == 1
            assert manhattan(layout.ingress, layout.lookup) == 1

    def test_egress_tiles_touch_chip_edge(self):
        for layout in ROUTER_LAYOUT:
            x, y = tile_xy(layout.egress)
            assert x in (0, GRID_WIDTH - 1) or y in (0, GRID_WIDTH - 1)

    def test_port_of_tile(self):
        assert port_of_tile(4) == (0, "ingress")
        assert port_of_tile(10) == (2, "crossbar")
        assert port_of_tile(13) == (3, "egress")
        assert port_of_tile(12) == (3, "lookup")

    def test_lookup_and_egress_sets(self):
        assert len(set(LOOKUP_TILES)) == 4
        assert len(set(EGRESS_TILES)) == 4
