"""Routing tables: Patricia-backed and Degermark-compressed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.addr import Prefix, ip_to_int, random_prefixes
from repro.ip.lookup import CompressedTable, LookupCostModel, RoutingTable
from repro.raw.memory import DataCache


class TestRoutingTable:
    def test_default_port(self):
        t = RoutingTable(default_port=9)
        assert t.lookup(123) == 9

    def test_add_and_lookup(self):
        t = RoutingTable()
        t.add_route(Prefix.parse("10.0.0.0/8"), 2)
        assert t.lookup(ip_to_int("10.5.5.5")) == 2
        assert t.lookup(ip_to_int("11.0.0.0")) is None

    def test_remove(self):
        t = RoutingTable()
        p = Prefix.parse("10.0.0.0/8")
        t.add_route(p, 1)
        assert t.remove_route(p)
        assert not t.remove_route(p)
        assert t.lookup(ip_to_int("10.0.0.1")) is None

    def test_negative_port_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable().add_route(Prefix.parse("10.0.0.0/8"), -1)

    def test_uniform_split_covers_space(self):
        t = RoutingTable.uniform_split(4)
        assert t.lookup(0) == 0
        assert t.lookup(0x40000000) == 1
        assert t.lookup(0x80000000) == 2
        assert t.lookup(0xFFFFFFFF) == 3

    def test_uniform_split_requires_power_of_two(self):
        with pytest.raises(ValueError):
            RoutingTable.uniform_split(3)

    def test_from_routes(self):
        routes = [(Prefix.parse("10.0.0.0/8"), 1), (Prefix.parse("20.0.0.0/8"), 2)]
        t = RoutingTable.from_routes(routes, default_port=0)
        assert len(t) == 2
        assert t.lookup(ip_to_int("20.1.1.1")) == 2
        assert t.lookup(ip_to_int("30.0.0.0")) == 0

    def test_lookup_with_path_reports_visits(self):
        t = RoutingTable.uniform_split(4)
        port, visits = t.lookup_with_path(0xC0000000)
        assert port == 3
        assert visits >= 1


class TestCompressedTable:
    def _routes(self, seed, n=400):
        rng = np.random.default_rng(seed)
        return [(p, i % 4) for i, p in enumerate(random_prefixes(n, rng, min_len=4, max_len=32))]

    def test_specific_layers(self):
        routes = [
            (Prefix.parse("10.0.0.0/8"), 1),
            (Prefix.parse("10.1.0.0/16"), 2),
            (Prefix.parse("10.1.1.0/24"), 3),
            (Prefix.parse("10.1.1.7/32"), 0),
        ]
        ct = CompressedTable(default_port=9).build(routes)
        assert ct.lookup(ip_to_int("10.2.0.0")) == 1
        assert ct.lookup(ip_to_int("10.1.2.0")) == 2
        assert ct.lookup(ip_to_int("10.1.1.1")) == 3
        assert ct.lookup(ip_to_int("10.1.1.7")) == 0
        assert ct.lookup(ip_to_int("11.0.0.0")) == 9

    def test_at_most_three_touches(self):
        ct = CompressedTable().build(self._routes(0))
        rng = np.random.default_rng(1)
        for _ in range(500):
            _, touches = ct.lookup_with_path(int(rng.integers(0, 1 << 32)))
            assert 1 <= touches <= 3

    def test_memory_footprint_reported(self):
        ct = CompressedTable().build(self._routes(0))
        assert ct.memory_bytes() >= (1 << 16) * 4

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_trie_table(self, seed):
        """Property: both structures compute identical LPM answers."""
        routes = self._routes(seed, n=150)
        trie = RoutingTable.from_routes(routes, default_port=0)
        comp = CompressedTable(default_port=0).build(routes)
        rng = np.random.default_rng(seed + 1)
        for _ in range(60):
            if rng.random() < 0.5:
                p, _ = routes[int(rng.integers(0, len(routes)))]
                a = p.random_member(rng)
            else:
                a = int(rng.integers(0, 1 << 32))
            assert trie.lookup(a) == comp.lookup(a), hex(a)


class TestCostModel:
    def test_hit_vs_miss(self):
        cache = DataCache()
        model = LookupCostModel(cache)
        cold = model.cost(3, [0, 4096, 8192])
        warm = model.cost(3, [0, 4096, 8192])
        assert cold > warm

    def test_uniform_model_monotone_in_visits(self):
        model = LookupCostModel(DataCache())
        assert model.cost_uniform(4, 0.9) > model.cost_uniform(2, 0.9)

    def test_uniform_model_monotone_in_hit_rate(self):
        model = LookupCostModel(DataCache())
        assert model.cost_uniform(3, 0.5) > model.cost_uniform(3, 0.99)

    def test_hit_rate_validated(self):
        model = LookupCostModel(DataCache())
        with pytest.raises(ValueError):
            model.cost_uniform(3, 1.5)
