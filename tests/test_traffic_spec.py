"""The declarative traffic layer: spec round-trips, validation, the
compat shim (old flat kwargs bit-identical to the explicit spec), and
the unified build factory across all three engines."""

import json

import pytest

from repro.config import SimConfig
from repro.engines import (
    WORKLOAD_SCHEMA,
    FabricEngine,
    RouterEngine,
    WordLevelEngine,
    WorkloadSpec,
)
from repro.traffic.spec import (
    PRESETS,
    TRAFFIC_SCHEMA,
    ArrivalSpec,
    PatternSpec,
    SizeSpec,
    TrafficSpec,
    resolve_traffic,
    spec_from_legacy,
)


class TestTrafficSpecRoundTrip:
    def test_to_dict_is_schema_tagged(self):
        d = TrafficSpec().to_dict()
        assert d["schema"] == TRAFFIC_SCHEMA

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_round_trip(self, name):
        spec = PRESETS[name]
        assert TrafficSpec.from_dict(spec.to_dict()) == spec
        # And through canonical JSON (the shard-spec serialization).
        assert TrafficSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_replay_spec_round_trips(self):
        spec = TrafficSpec(kind="replay", trace="t.csv", loop=True)
        assert TrafficSpec.from_dict(spec.to_dict()) == spec

    def test_wrong_schema_rejected(self):
        d = TrafficSpec().to_dict()
        d["schema"] = "repro-traffic/999"
        with pytest.raises(ValueError, match="schema"):
            TrafficSpec.from_dict(d)

    def test_unknown_fields_rejected(self):
        d = TrafficSpec().to_dict()
        d["burstiness"] = 3
        with pytest.raises(ValueError, match="unknown traffic spec fields"):
            TrafficSpec.from_dict(d)

    def test_resolve_preset_names_and_errors(self):
        assert resolve_traffic("imix") is PRESETS["imix"]
        assert resolve_traffic(None) is None
        spec = PRESETS["bursty"]
        assert resolve_traffic(spec) is spec
        with pytest.raises(ValueError, match="not a preset"):
            resolve_traffic("no_such_preset")
        with pytest.raises(TypeError):
            resolve_traffic(42)

    def test_resolve_trace_path_becomes_replay(self):
        spec = resolve_traffic("examples/traces/imix_1k.csv")
        assert spec.kind == "replay"
        assert spec.trace.endswith("imix_1k.csv")

    def test_resolve_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(PRESETS["imix_onoff"].to_json())
        assert resolve_traffic(str(path)) == PRESETS["imix_onoff"]

    def test_spec_is_picklable(self):
        import pickle

        spec = PRESETS["imix_heavy"]
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSpecValidation:
    def test_pattern_validation(self):
        with pytest.raises(ValueError, match="unknown pattern kind"):
            PatternSpec(kind="zipf")
        with pytest.raises(ValueError, match="p_hot"):
            PatternSpec(kind="hotspot", p_hot=1.5)
        with pytest.raises(ValueError, match="hot_port"):
            PatternSpec(kind="hotspot", hot_port=-1)
        with pytest.raises(ValueError, match="shift"):
            PatternSpec(shift=-2)

    def test_size_validation(self):
        with pytest.raises(ValueError, match="unknown size kind"):
            SizeSpec(kind="pareto")
        with pytest.raises(ValueError, match="word-aligned"):
            SizeSpec(bytes=65)
        with pytest.raises(ValueError, match="lo must be <= hi"):
            SizeSpec(kind="uniform", lo=512, hi=64)

    def test_arrival_validation(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ArrivalSpec(kind="poisson")
        with pytest.raises(ValueError, match="alpha > 1"):
            ArrivalSpec(kind="onoff", heavy=True, alpha=0.9)
        assert ArrivalSpec(kind="onoff", mean_on=10, mean_off=30, p=0.8).load \
            == pytest.approx(0.2)

    def test_replay_needs_trace(self):
        with pytest.raises(ValueError, match="trace path"):
            TrafficSpec(kind="replay")

    def test_workload_spec_field_validation(self):
        with pytest.raises(ValueError, match="p_hot"):
            WorkloadSpec(p_hot=1.2)
        with pytest.raises(ValueError, match="shift"):
            WorkloadSpec(shift=-1)
        with pytest.raises(ValueError, match="hot_port"):
            WorkloadSpec(hot_port=-3)

    def test_hot_port_range_checked_at_engine_build_time(self):
        # A 4-port engine must reject hot_port=7 with a clear message.
        wl = WorkloadSpec(pattern="hotspot", hot_port=7, quanta=50)
        with pytest.raises(ValueError, match="hot_port 7 out of range"):
            FabricEngine(SimConfig(ports=4)).run(wl)
        # The same spec is fine on an 8-port engine.
        res = FabricEngine(SimConfig(ports=8)).run(wl)
        assert res.delivered_packets > 0


class TestWorkloadSpecRoundTrip:
    def test_schema_tag_and_round_trip(self):
        wl = WorkloadSpec(traffic=PRESETS["imix"], quanta=123)
        d = wl.to_dict()
        assert d["schema"] == WORKLOAD_SCHEMA
        assert d["traffic"]["schema"] == TRAFFIC_SCHEMA
        back = WorkloadSpec.from_dict(d)
        assert back.quanta == 123
        assert resolve_traffic(back.traffic) == PRESETS["imix"]

    def test_unknown_field_rejected(self):
        d = WorkloadSpec().to_dict()
        d["warp_factor"] = 9
        with pytest.raises(ValueError, match="unknown workload fields"):
            WorkloadSpec.from_dict(d)

    def test_effective_traffic_maps_legacy_kwargs(self):
        wl = WorkloadSpec(pattern="hotspot", hot_port=2, p_hot=0.9,
                          packet_bytes=256)
        spec = wl.effective_traffic()
        assert spec.pattern.kind == "hotspot"
        assert spec.pattern.hot_port == 2
        assert spec.sizes.bytes == 256
        assert spec.arrivals.kind == "saturated"

    def test_traffic_field_wins_over_flat_kwargs(self):
        wl = WorkloadSpec(pattern="permutation", traffic="imix")
        assert wl.effective_traffic() == PRESETS["imix"]


def _fingerprint(res):
    return (
        res.cycles,
        res.delivered_packets,
        res.delivered_words,
        res.gbps,
        tuple(res.per_port_packets),
        tuple(sorted(res.latency.items())),
    )


class TestCompatShimEquivalence:
    """Old flat kwargs and the equivalent explicit spec must be
    bit-identical through every engine (the tentpole guarantee)."""

    LEGACY = [
        dict(pattern="permutation", packet_bytes=1024, shift=1),
        dict(pattern="uniform", packet_bytes=256),
        dict(pattern="hotspot", packet_bytes=512, hot_port=1, p_hot=0.8),
    ]

    @pytest.mark.parametrize("kwargs", LEGACY)
    def test_fabric(self, kwargs):
        old = FabricEngine(SimConfig(seed=3)).run(
            WorkloadSpec(**kwargs, quanta=150)
        )
        spec = spec_from_legacy(**kwargs)
        new = FabricEngine(SimConfig(seed=3)).run(
            WorkloadSpec(traffic=spec, quanta=150)
        )
        assert _fingerprint(old) == _fingerprint(new)

    @pytest.mark.parametrize("kwargs", LEGACY)
    def test_router(self, kwargs):
        config = SimConfig(fidelity="router", seed=3)
        old = RouterEngine(config).run(WorkloadSpec(**kwargs, packets=120))
        spec = spec_from_legacy(**kwargs)
        new = RouterEngine(config).run(
            WorkloadSpec(traffic=spec, packets=120)
        )
        assert _fingerprint(old) == _fingerprint(new)

    @pytest.mark.parametrize(
        "kwargs", [k for k in LEGACY if k["pattern"] != "hotspot"]
    )
    def test_wordlevel(self, kwargs):
        config = SimConfig(fidelity="wordlevel", seed=3)
        budget = dict(cycles=15_000, warmup_cycles=2_000)
        old = WordLevelEngine(config).run(WorkloadSpec(**kwargs, **budget))
        spec = spec_from_legacy(**kwargs)
        new = WordLevelEngine(config).run(
            WorkloadSpec(traffic=spec, **budget)
        )
        assert _fingerprint(old) == _fingerprint(new)


class TestNewWorkloadsRun:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_on_fabric(self, name):
        res = FabricEngine(SimConfig(seed=1)).run(
            WorkloadSpec(traffic=name, quanta=200)
        )
        assert res.delivered_packets > 0

    def test_imix_mixes_sizes_in_one_run(self):
        from repro.traffic.model import SpecModel

        model = SpecModel(PRESETS["imix"], n=4, seed=0)
        sizes = {model.next_packet(0)[1] for _ in range(300)}
        assert sizes == {64, 576, 1024}

    def test_hotspot_drift_moves_the_hot_port(self):
        from repro.traffic.model import SpecModel

        spec = TrafficSpec(
            pattern=PatternSpec(kind="hotspot", p_hot=1.0, drift_packets=16),
        )
        model = SpecModel(spec, n=4, seed=0)
        dests = [model.next_packet(0)[0] for _ in range(64)]
        # With p_hot=1 every draw tracks the (drifting) hot port.
        assert dests[:16] == [0] * 16
        assert dests[16:32] == [1] * 16

    def test_bernoulli_preset_on_router_paces_below_line_rate(self):
        res = RouterEngine(SimConfig(fidelity="router", seed=1)).run(
            WorkloadSpec(traffic="bernoulli", packets=80)
        )
        assert res.delivered_packets > 0

    def test_onoff_preset_on_wordlevel_rejected(self):
        with pytest.raises(ValueError, match="saturated-only"):
            WordLevelEngine(SimConfig(fidelity="wordlevel")).run(
                WorkloadSpec(traffic="imix_onoff", cycles=10_000)
            )
