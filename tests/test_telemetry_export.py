"""Golden exporter test: the Chrome-trace JSON for the acceptance
workload (Fig 7-1 peak, quick budget) must be schema-valid, time-ordered,
span-balanced, and byte-deterministic across same-seed runs."""

import json

import pytest

from repro.telemetry import runtime
from repro.telemetry.export import (
    TRACE_SCHEMA,
    canonical,
    chrome_trace,
    render_kernel_profile,
    render_stage_table,
    validate_chrome_trace,
)
from repro.telemetry.traced import (
    SPECS,
    run_plain,
    run_traced,
    _result_fingerprint,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    runtime.disable()
    yield
    runtime.disable()


@pytest.fixture(scope="module")
def traced_run():
    """One quick-budget traced run of the acceptance workload."""
    result, tel, _wall = run_traced("fig7_1_peak", quick=True, seed=0)
    doc = chrome_trace(tel, title="fig7_1_peak", ports=result.config.ports)
    runtime.disable()
    return result, tel, doc


class TestGoldenExport:
    def test_schema_valid(self, traced_run):
        _, _, doc = traced_run
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["schema"] == TRACE_SCHEMA

    def test_ts_monotonic(self, traced_run):
        _, _, doc = traced_run
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)
        assert len(ts) > 0

    def test_async_spans_balanced(self, traced_run):
        _, _, doc = traced_run
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends)
        assert len(begins) >= 1  # at least one complete PacketJourney
        assert {e["id"] for e in begins} == {e["id"] for e in ends}

    def test_stage_slices_present(self, traced_run):
        _, _, doc = traced_run
        stages = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"ingress", "fabric", "egress"} <= stages

    def test_stage_histograms_populated(self, traced_run):
        _, tel, doc = traced_run
        hists = doc["otherData"]["stage_histograms"]
        for stage in ("ingress", "fabric", "egress", "total"):
            assert hists[stage]["count"] > 0
        assert tel.journeys.completed >= 1

    def test_percentiles_pinned(self, traced_run):
        """Within-bucket interpolation, pinned for the acceptance run.

        The fabric-stage p50 (3191) falls strictly inside its log
        bucket [2048, 4095]; the pre-interpolation exporter reported
        the bucket ceiling (4095) here.  Degenerate single-value
        stages clamp to the observed value.
        """
        _, _, doc = traced_run
        hists = doc["otherData"]["stage_histograms"]
        assert (hists["fabric"]["p50"], hists["fabric"]["p99"]) == (3191, 6096)
        assert (hists["total"]["p50"], hists["total"]["p99"]) == (3733, 6628)
        assert (hists["ingress"]["p50"], hists["ingress"]["p99"]) == (276, 276)
        assert (hists["egress"]["p50"], hists["egress"]["p99"]) == (256, 256)

    def test_counter_snapshots_present(self, traced_run):
        _, _, doc = traced_run
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters, "expected periodic metric snapshots as C events"
        names = {e["name"] for e in counters}
        assert "fabric.tokens_passed" in names

    def test_deterministic_across_runs(self, traced_run):
        _, _, doc = traced_run
        result2, tel2, _ = run_traced("fig7_1_peak", quick=True, seed=0)
        doc2 = chrome_trace(tel2, title="fig7_1_peak",
                            ports=result2.config.ports)
        assert canonical(doc) == canonical(doc2)

    def test_json_serializable(self, traced_run):
        _, _, doc = traced_run
        json.loads(json.dumps(doc))

    def test_no_wall_clock_in_export(self, traced_run):
        """Wall time is nondeterministic; it must stay terminal-only."""
        _, _, doc = traced_run
        text = json.dumps(doc)
        assert "wall" not in text
        assert "events_per_sec" not in text

    def test_disabled_run_bit_identical(self, traced_run):
        result, _, _ = traced_run
        plain = run_plain("fig7_1_peak", quick=True, seed=0)
        assert _result_fingerprint(plain) == _result_fingerprint(result)


class TestRenderers:
    def test_stage_table(self, traced_run):
        _, tel, _ = traced_run
        out = render_stage_table(tel)
        assert "ingress" in out and "total" in out
        assert "journeys:" in out

    def test_kernel_profile(self, traced_run):
        _, tel, _ = traced_run
        out = render_kernel_profile(tel, wall_s=0.5, sim_events=1000)
        assert "dispatch rate" in out
        assert "calendar buckets" in out
        out_no_wall = render_kernel_profile(tel)
        assert "dispatch rate" not in out_no_wall


class TestValidator:
    def test_catches_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_catches_nonmonotonic_ts(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": 1, "name": "a", "ts": 10, "s": "t"},
            {"ph": "i", "pid": 1, "name": "b", "ts": 5, "s": "t"},
        ]}
        assert any("monotonic" in p for p in validate_chrome_trace(doc))

    def test_catches_unmatched_spans(self):
        doc = {"traceEvents": [
            {"ph": "b", "cat": "j", "id": 1, "pid": 1, "name": "a", "ts": 0},
        ]}
        assert any("left open" in p for p in validate_chrome_trace(doc))
        doc = {"traceEvents": [
            {"ph": "e", "cat": "j", "id": 1, "pid": 1, "name": "a", "ts": 0},
        ]}
        assert any("without matching" in p for p in validate_chrome_trace(doc))

    def test_catches_x_without_dur(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 1, "name": "a", "ts": 0},
        ]}
        assert any("missing 'dur'" in p for p in validate_chrome_trace(doc))


class TestSpecs:
    def test_acceptance_spec_exists(self):
        assert "fig7_1_peak" in SPECS
        assert SPECS["fig7_1_peak"].fidelity == "router"

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError):
            run_traced("nope")

    def test_packets_override_rejected_for_wordlevel(self):
        with pytest.raises(ValueError):
            run_traced("fig7_3", packets=10)
