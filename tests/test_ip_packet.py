"""IPv4 packet serialization and header operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.addr import ip_to_int
from repro.ip.packet import HEADER_WORDS_IPV4, IPv4Packet

addr = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestSynthesize:
    def test_minimum_packet(self):
        pkt = IPv4Packet.synthesize(src=1, dst=2, size_bytes=20)
        assert pkt.total_words == HEADER_WORDS_IPV4
        assert pkt.payload == ()
        assert pkt.checksum_ok()

    def test_sizes(self):
        for size in (64, 128, 1024):
            pkt = IPv4Packet.synthesize(1, 2, size)
            assert pkt.total_length == size
            assert pkt.total_words == size // 4

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            IPv4Packet.synthesize(1, 2, 16)

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            IPv4Packet.synthesize(1, 2, 65)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            IPv4Packet.synthesize(1, 2, 65540)

    def test_payload_deterministic_per_ident(self):
        a = IPv4Packet.synthesize(1, 2, 256, ident=5)
        b = IPv4Packet.synthesize(1, 2, 256, ident=5)
        c = IPv4Packet.synthesize(1, 2, 256, ident=6)
        assert a.payload == b.payload
        assert a.payload != c.payload


class TestRoundtrip:
    def test_words_roundtrip(self):
        pkt = IPv4Packet.synthesize(
            src=ip_to_int("10.1.2.3"), dst=ip_to_int("4.5.6.7"), size_bytes=512, ident=77
        )
        again = IPv4Packet.from_words(pkt.to_words())
        assert again.src == pkt.src
        assert again.dst == pkt.dst
        assert again.ident == 77
        assert again.payload == pkt.payload
        assert again.checksum_ok()

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            IPv4Packet.from_words([0x45000014])

    def test_wrong_version_rejected(self):
        pkt = IPv4Packet.synthesize(1, 2, 20)
        words = pkt.to_words()
        words[0] = (6 << 28) | (words[0] & 0x0FFFFFFF)
        with pytest.raises(ValueError):
            IPv4Packet.from_words(words)

    def test_length_mismatch_rejected(self):
        pkt = IPv4Packet.synthesize(1, 2, 64)
        with pytest.raises(ValueError):
            IPv4Packet.from_words(pkt.to_words()[:-1])

    @given(src=addr, dst=addr, ident=st.integers(0, 0xFFFF),
           ttl=st.integers(1, 255), nwords=st.integers(0, 64))
    @settings(max_examples=100)
    def test_roundtrip_property(self, src, dst, ident, ttl, nwords):
        pkt = IPv4Packet.synthesize(
            src=src, dst=dst, size_bytes=20 + 4 * nwords, ident=ident, ttl=ttl
        )
        again = IPv4Packet.from_words(pkt.to_words())
        assert (again.src, again.dst, again.ttl, again.ident) == (src, dst, ttl, ident)
        assert again.payload == pkt.payload


class TestHeaderOps:
    def test_checksum_detects_corruption(self):
        pkt = IPv4Packet.synthesize(1, 2, 64)
        pkt.ttl ^= 0xFF
        assert not pkt.checksum_ok()

    def test_decrement_ttl_keeps_checksum_valid(self):
        pkt = IPv4Packet.synthesize(1, 2, 64, ttl=64)
        for expected in range(63, 0, -1):
            pkt.decrement_ttl()
            assert pkt.ttl == expected
            assert pkt.checksum_ok()

    def test_decrement_at_zero_rejected(self):
        pkt = IPv4Packet.synthesize(1, 2, 64, ttl=0)
        with pytest.raises(ValueError):
            pkt.decrement_ttl()

    def test_copy_is_independent(self):
        pkt = IPv4Packet.synthesize(1, 2, 64)
        dup = pkt.copy()
        dup.decrement_ttl()
        assert pkt.ttl == dup.ttl + 1
