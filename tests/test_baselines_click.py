"""The Click-style modular router baseline."""

import numpy as np
import pytest

from repro.baselines.click import (
    CheckIPHeader,
    ClickContext,
    ClickRouter,
    DecIPTTL,
    Discard,
    FromDevice,
    LookupIPRoute,
    Queue,
    ToDevice,
    standard_ip_router,
)
from repro.ip.lookup import RoutingTable
from repro.ip.packet import IPv4Packet
from repro.traffic.workload import PacketFactory


def make_packets(n, size=64, seed=0):
    rng = np.random.default_rng(seed)
    factory = PacketFactory(4, rng)
    return [
        (i % 4, factory.make(i % 4, int(rng.integers(0, 4)), size))
        for i in range(n)
    ]


class TestElements:
    def test_unconnected_output_raises(self):
        ctx = ClickContext()
        fd = FromDevice()
        with pytest.raises(RuntimeError):
            fd.inject(ctx, IPv4Packet.synthesize(1, 2, 64))

    def test_bad_port_wiring_rejected(self):
        with pytest.raises(ValueError):
            FromDevice().connect(1, Discard())
        with pytest.raises(ValueError):
            FromDevice().connect(0, Discard(), in_port=3)

    def test_checkipheader_drops_bad_checksum(self):
        ctx = ClickContext()
        chk = CheckIPHeader()
        q = Queue()
        chk.connect(0, q)
        chk.connect(1, Discard())
        pkt = IPv4Packet.synthesize(1, 2, 64)
        pkt.checksum ^= 0xFFFF
        chk._enter(ctx, pkt, 0)
        assert ctx.dropped == 1
        assert q.pull(ctx) is None

    def test_decttl_expires(self):
        ctx = ClickContext()
        ttl = DecIPTTL()
        q = Queue()
        ttl.connect(0, q)
        ttl.connect(1, Discard())
        pkt = IPv4Packet.synthesize(1, 2, 64, ttl=1)
        ttl._enter(ctx, pkt, 0)
        assert ctx.dropped == 1

    def test_decttl_patches_checksum(self):
        ctx = ClickContext()
        ttl = DecIPTTL()
        q = Queue()
        ttl.connect(0, q)
        ttl.connect(1, Discard())
        pkt = IPv4Packet.synthesize(1, 2, 64, ttl=9)
        ttl._enter(ctx, pkt, 0)
        out = q.pull(ctx)
        assert out.ttl == 8
        assert out.checksum_ok()

    def test_lookup_routes_to_port(self):
        ctx = ClickContext()
        table = RoutingTable.uniform_split(4)
        lk = LookupIPRoute(table, 4)
        queues = [Queue() for _ in range(4)]
        for p, q in enumerate(queues):
            lk.connect(p, q)
        pkt = IPv4Packet.synthesize(1, 0xC0000001, 64)  # top quarter -> 3
        lk._enter(ctx, pkt, 0)
        assert queues[3].pull(ctx) is pkt

    def test_queue_drop_tail(self):
        ctx = ClickContext()
        q = Queue(capacity=2)
        for i in range(4):
            q._enter(ctx, IPv4Packet.synthesize(1, 2, 64), 0)
        assert q.drops == 2
        assert ctx.dropped == 2


class TestStandardRouter:
    def test_forwards_everything_valid(self):
        router = standard_ip_router(4)
        pkts = make_packets(100)
        res = router.run_packets(pkts)
        assert res.packets == 100
        assert router.ctx.dropped == 0

    def test_cycles_accumulate(self):
        router = standard_ip_router(4)
        res = router.run_packets(make_packets(10))
        assert res.cycles > 10 * 1000  # >1k cycles per packet on a PC

    def test_calibration_64B_near_click_bar(self):
        """The thesis's Fig 7-1 Click bar: ~0.23 Gbps at 64 B."""
        router = standard_ip_router(4)
        res = router.run_packets(make_packets(1500, size=64))
        assert res.gbps == pytest.approx(0.23, rel=0.12)

    def test_large_packets_stay_under_2gbps(self):
        """A PC-class router is still memory-bound at 1024 B -- far
        below the Raw router at the same size."""
        router = standard_ip_router(4)
        res = router.run_packets(make_packets(600, size=1024))
        assert 1.0 < res.gbps < 2.5

    def test_rate_is_per_packet_dominated(self):
        small = standard_ip_router(4).run_packets(make_packets(800, size=64))
        large = standard_ip_router(4).run_packets(make_packets(800, size=1024))
        # kpps barely moves across a 16x size change (per-packet bound).
        assert small.kpps / large.kpps < 3.0

    def test_bad_packets_dropped_not_forwarded(self):
        router = standard_ip_router(4)
        pkts = make_packets(20)
        for _, p in pkts[:5]:
            p.checksum ^= 0x1
        res = router.run_packets(pkts)
        assert res.packets == 15
        assert router.ctx.dropped == 5
