"""Traffic generation: patterns, sizes, arrivals, workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.arrivals import (
    Bernoulli,
    CounterSlotArrivals,
    OnOff,
    Saturated,
)
from repro.traffic.patterns import (
    BurstyDestinations,
    FixedPermutation,
    HotspotDestinations,
    RotatingPermutation,
    UniformDestinations,
)
from repro.traffic.sizes import BimodalSizes, FixedSize, IMix, UniformSizes
from repro.traffic.workload import PacketFactory, Workload, fabric_source


class TestPatterns:
    def test_fixed_permutation(self):
        p = FixedPermutation([2, 3, 0, 1])
        assert [p.next_dest(i) for i in range(4)] == [2, 3, 0, 1]

    def test_shift_constructor(self):
        p = FixedPermutation.shift(4, 2)
        assert [p.next_dest(i) for i in range(4)] == [2, 3, 0, 1]

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            FixedPermutation([0, 0, 1, 2])

    def test_uniform_exclude_self(self):
        rng = np.random.default_rng(0)
        p = UniformDestinations(4, rng, exclude_self=True)
        for port in range(4):
            for _ in range(200):
                assert p.next_dest(port) != port

    def test_uniform_covers_all_destinations(self):
        rng = np.random.default_rng(0)
        p = UniformDestinations(4, rng, exclude_self=False)
        seen = {p.next_dest(1) for _ in range(300)}
        assert seen == {0, 1, 2, 3}

    def test_rotating_permutation_never_self(self):
        p = RotatingPermutation(4)
        for _ in range(20):
            for port in range(4):
                assert p.next_dest(port) != port

    def test_rotating_is_conflict_free_each_round(self):
        p = RotatingPermutation(4)
        for _ in range(8):
            dests = [p.next_dest(i) for i in range(4)]
            assert sorted(dests) == [0, 1, 2, 3]

    def test_hotspot_bias(self):
        rng = np.random.default_rng(1)
        p = HotspotDestinations(4, rng, hot=2, p_hot=0.8)
        hits = sum(p.next_dest(0) == 2 for _ in range(1000))
        assert hits > 700

    def test_hotspot_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            HotspotDestinations(4, rng, hot=9)
        with pytest.raises(ValueError):
            HotspotDestinations(4, rng, p_hot=1.5)

    def test_bursty_produces_runs(self):
        rng = np.random.default_rng(2)
        p = BurstyDestinations(4, rng, mean_burst=16.0)
        dests = [p.next_dest(0) for _ in range(400)]
        repeats = sum(a == b for a, b in zip(dests, dests[1:]))
        assert repeats > 300  # long runs dominate

    def test_bursty_never_self_when_excluded(self):
        rng = np.random.default_rng(2)
        p = BurstyDestinations(4, rng, exclude_self=True)
        assert all(p.next_dest(3) != 3 for _ in range(300))


class TestSizes:
    def test_fixed(self):
        s = FixedSize(512)
        assert s.next_size() == 512
        assert s.mean() == 512

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            FixedSize(65)
        with pytest.raises(ValueError):
            FixedSize(8)

    def test_imix_values_and_mean(self):
        rng = np.random.default_rng(0)
        s = IMix(rng)
        draws = [s.next_size() for _ in range(500)]
        assert set(draws) <= set(IMix.SIZES)
        assert abs(np.mean(draws) - s.mean()) < 60

    def test_uniform_sizes_bounds(self):
        rng = np.random.default_rng(0)
        s = UniformSizes(rng, 64, 256)
        for _ in range(200):
            v = s.next_size()
            assert 64 <= v <= 256 and v % 4 == 0

    def test_uniform_sizes_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            UniformSizes(rng, 256, 64)

    def test_bimodal(self):
        rng = np.random.default_rng(0)
        s = BimodalSizes(rng, 64, 1024, p_small=0.5)
        draws = {s.next_size() for _ in range(100)}
        assert draws == {64, 1024}


class TestArrivals:
    def test_saturated(self):
        a = Saturated()
        assert a.offers(0) and a.load == 1.0

    def test_bernoulli_rate(self):
        rng = np.random.default_rng(0)
        a = Bernoulli(0.3, rng)
        rate = np.mean([a.offers(0) for _ in range(4000)])
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5, np.random.default_rng(0))

    def test_bernoulli_is_counter_replayable(self):
        a = Bernoulli(0.4, seed=7)
        head = [a.offers(1) for _ in range(50)]
        mark = a.state()
        tail = [a.offers(1) for _ in range(50)]
        b = Bernoulli(0.4, seed=7).restore(mark)
        assert [b.offers(1) for _ in range(50)] == tail
        # Replaying from scratch reproduces the head too.
        c = Bernoulli(0.4, seed=7)
        assert [c.offers(1) for _ in range(50)] == head

    def test_bernoulli_ports_independent(self):
        a = Bernoulli(0.5, seed=3)
        p0 = [a.offers(0) for _ in range(200)]
        b = Bernoulli(0.5, seed=3)
        # Interleaving draws on another port must not perturb port 0.
        p0_interleaved = []
        for _ in range(200):
            b.offers(1)
            p0_interleaved.append(b.offers(0))
        assert p0 == p0_interleaved

    def test_onoff_load_and_gaps(self):
        a = OnOff(mean_on=8.0, mean_off=8.0, seed=1)
        assert a.load == pytest.approx(0.5)
        draws = [a.offers(0) for _ in range(4000)]
        rate = np.mean(draws)
        assert 0.3 < rate < 0.7
        # On-off must produce runs of idle polls, unlike Bernoulli(0.5).
        longest_gap = cur = 0
        for d in draws:
            cur = 0 if d else cur + 1
            longest_gap = max(longest_gap, cur)
        assert longest_gap >= 8

    def test_onoff_state_restore(self):
        a = OnOff(mean_on=4.0, mean_off=4.0, seed=5, heavy=True, alpha=1.5)
        [a.offers(0) for _ in range(77)]
        mark = a.state()
        tail = [a.offers(0) for _ in range(100)]
        b = OnOff(mean_on=4.0, mean_off=4.0, seed=5, heavy=True, alpha=1.5)
        b.restore(mark)
        assert [b.offers(0) for _ in range(100)] == tail

    def test_onoff_validation(self):
        with pytest.raises(ValueError):
            OnOff(mean_on=0.5)
        with pytest.raises(ValueError):
            OnOff(heavy=True, alpha=1.0)

    def test_counter_slot_arrivals_restore(self):
        a = CounterSlotArrivals(4, seed=2)
        [a.slot(0.6) for _ in range(20)]
        mark = a.state()
        tail = [a.slot(0.6) for _ in range(20)]
        b = CounterSlotArrivals(4, seed=2).restore(mark)
        assert [b.slot(0.6) for _ in range(20)] == tail


class TestWorkload:
    def test_next_packet(self):
        rng = np.random.default_rng(0)
        w = Workload(FixedPermutation.shift(4, 1), FixedSize(256), Saturated())
        assert w.next_packet(0) == (1, 256)
        assert w.num_ports == 4

    def test_fabric_source_converts_to_words(self):
        w = Workload(FixedPermutation.shift(4, 1), FixedSize(256), Saturated())
        src = fabric_source(w)
        assert src(2) == (3, 64)

    def test_no_arrival_is_none(self):
        rng = np.random.default_rng(0)
        w = Workload(
            FixedPermutation.shift(4, 1), FixedSize(64), Bernoulli(0.0, rng)
        )
        assert w.next_packet(0) is None
        assert fabric_source(w)(0) is None


class TestPacketFactory:
    def test_addresses_resolve_to_intended_port(self):
        """The minted destination address must LPM back to the intended
        output through the uniform-split table -- the end-to-end wiring
        of traffic intent and route lookup."""
        from repro.ip.lookup import RoutingTable

        rng = np.random.default_rng(3)
        factory = PacketFactory(4, rng)
        table = RoutingTable.uniform_split(4)
        for out_port in range(4):
            for _ in range(25):
                pkt = factory.make(0, out_port, 128)
                assert table.lookup(pkt.dst) == out_port
                assert pkt.checksum_ok()

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            PacketFactory(3, np.random.default_rng(0))

    def test_idents_unique(self):
        rng = np.random.default_rng(0)
        f = PacketFactory(4, rng)
        idents = {f.make(0, 1, 64).ident for _ in range(200)}
        assert len(idents) == 200

    def test_from_workload(self):
        rng = np.random.default_rng(0)
        f = PacketFactory(4, rng)
        w = Workload(FixedPermutation.shift(4, 2), FixedSize(128), Saturated())
        pkt = f.from_workload(w, 1)
        assert pkt.output_port == 3
        assert pkt.total_length == 128
