"""Trace container: windowing, clipping, aggregation."""

import pytest

from repro.sim.trace import Interval, Trace


class TestInterval:
    def test_length(self):
        assert Interval("k", "busy", 3, 10).length == 7


class TestTraceRecording:
    def test_basic_record_and_query(self):
        t = Trace()
        t.record("a", "busy", 0, 5)
        t.record("a", "tx", 5, 8)
        t.record("b", "busy", 2, 4)
        assert t.keys() == ["a", "b"]
        assert t.time_in_state("a", "busy") == 5
        assert t.time_in_state("a", "tx") == 3
        assert t.horizon() == 8

    def test_empty_interval_dropped(self):
        t = Trace()
        t.record("a", "busy", 5, 5)
        t.record("a", "busy", 6, 5)
        assert t.keys() == []

    def test_intervals_sorted_by_start(self):
        t = Trace()
        t.record("a", "busy", 10, 12)
        t.record("a", "busy", 0, 2)
        starts = [iv.start for iv in t.intervals("a")]
        assert starts == sorted(starts)

    def test_unknown_key_empty(self):
        t = Trace()
        assert t.intervals("nope") == []
        assert t.time_in_state("nope", "busy") == 0


class TestTraceWindow:
    def test_outside_window_dropped(self):
        t = Trace(start=100, stop=200)
        t.record("a", "busy", 0, 50)
        t.record("a", "busy", 250, 300)
        assert t.keys() == []

    def test_partial_overlap_clipped(self):
        t = Trace(start=100, stop=200)
        t.record("a", "busy", 90, 110)
        t.record("a", "busy", 190, 250)
        ivs = t.intervals("a")
        assert [(iv.start, iv.end) for iv in ivs] == [(100, 110), (190, 200)]

    def test_inside_window_kept(self):
        t = Trace(start=100, stop=200)
        t.record("a", "busy", 120, 180)
        assert t.time_in_state("a", "busy") == 60

    def test_all_intervals_flat(self):
        t = Trace()
        t.record("b", "busy", 0, 1)
        t.record("a", "tx", 1, 2)
        ivs = t.all_intervals()
        assert len(ivs) == 2
        assert ivs[0].key == "a"  # keys sorted
