"""Trace container: windowing, clipping, aggregation."""

import pytest

from repro.sim.trace import Interval, Trace


class TestInterval:
    def test_length(self):
        assert Interval("k", "busy", 3, 10).length == 7


class TestTraceRecording:
    def test_basic_record_and_query(self):
        t = Trace()
        t.record("a", "busy", 0, 5)
        t.record("a", "tx", 5, 8)
        t.record("b", "busy", 2, 4)
        assert t.keys() == ["a", "b"]
        assert t.time_in_state("a", "busy") == 5
        assert t.time_in_state("a", "tx") == 3
        assert t.horizon() == 8

    def test_empty_interval_dropped(self):
        t = Trace()
        t.record("a", "busy", 5, 5)
        t.record("a", "busy", 6, 5)
        assert t.keys() == []

    def test_intervals_sorted_by_start(self):
        t = Trace()
        t.record("a", "busy", 10, 12)
        t.record("a", "busy", 0, 2)
        starts = [iv.start for iv in t.intervals("a")]
        assert starts == sorted(starts)

    def test_unknown_key_empty(self):
        t = Trace()
        assert t.intervals("nope") == []
        assert t.time_in_state("nope", "busy") == 0


class TestTraceOverlapRejection:
    """``record`` must reject intervals that overlap an existing one for
    the same key: overlapping states would double-count utilization."""

    def test_overlap_with_last_rejected(self):
        t = Trace()
        t.record("a", "busy", 0, 10)
        with pytest.raises(ValueError, match="overlap"):
            t.record("a", "idle", 5, 8)

    def test_overlap_out_of_order_rejected(self):
        t = Trace()
        t.record("a", "busy", 10, 20)
        with pytest.raises(ValueError, match="overlap"):
            t.record("a", "idle", 0, 15)

    def test_straddling_insert_rejected(self):
        t = Trace()
        t.record("a", "busy", 0, 5)
        t.record("a", "busy", 10, 15)
        with pytest.raises(ValueError, match="overlap"):
            t.record("a", "idle", 4, 11)

    def test_touching_intervals_allowed(self):
        t = Trace()
        t.record("a", "busy", 0, 5)
        t.record("a", "idle", 5, 10)  # half-open: end == next start is fine
        t.record("a", "tx", 10, 12)
        assert len(t.intervals("a")) == 3

    def test_gap_insert_between_existing_allowed(self):
        t = Trace()
        t.record("a", "busy", 0, 2)
        t.record("a", "busy", 10, 12)
        t.record("a", "idle", 4, 8)  # fits in the gap, out of order
        starts = [iv.start for iv in t.intervals("a")]
        assert starts == [0, 4, 10]

    def test_other_keys_unaffected(self):
        t = Trace()
        t.record("a", "busy", 0, 10)
        t.record("b", "busy", 0, 10)  # same span, different key: fine
        assert t.keys() == ["a", "b"]

    def test_same_state_contiguous_coalesces(self):
        t = Trace()
        t.record("a", "busy", 0, 5)
        t.record("a", "busy", 5, 9)
        ivs = t.intervals("a")
        assert [(iv.start, iv.end) for iv in ivs] == [(0, 9)]


class TestTraceWindow:
    def test_outside_window_dropped(self):
        t = Trace(start=100, stop=200)
        t.record("a", "busy", 0, 50)
        t.record("a", "busy", 250, 300)
        assert t.keys() == []

    def test_partial_overlap_clipped(self):
        t = Trace(start=100, stop=200)
        t.record("a", "busy", 90, 110)
        t.record("a", "busy", 190, 250)
        ivs = t.intervals("a")
        assert [(iv.start, iv.end) for iv in ivs] == [(100, 110), (190, 200)]

    def test_inside_window_kept(self):
        t = Trace(start=100, stop=200)
        t.record("a", "busy", 120, 180)
        assert t.time_in_state("a", "busy") == 60

    def test_all_intervals_flat(self):
        t = Trace()
        t.record("b", "busy", 0, 1)
        t.record("a", "tx", 1, 2)
        ivs = t.all_intervals()
        assert len(ivs) == 2
        assert ivs[0].key == "a"  # keys sorted
