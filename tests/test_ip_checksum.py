"""Internet checksum and RFC 1624 incremental updates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.checksum import incremental_update, internet_checksum, verify_checksum

halfword = st.integers(min_value=0, max_value=0xFFFF)


class TestChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example header.
        hdr = [0x4500, 0x0073, 0x0000, 0x4000, 0x4011, 0x0000, 0xC0A8, 0x0001, 0xC0A8, 0x00C7]
        csum = internet_checksum(hdr)
        assert csum == 0xB861

    def test_verify_accepts_valid(self):
        hdr = [0x4500, 0x0073, 0x0000, 0x4000, 0x4011, 0x0000, 0xC0A8, 0x0001, 0xC0A8, 0x00C7]
        hdr[5] = internet_checksum(hdr)
        assert verify_checksum(hdr)

    def test_verify_rejects_corrupted(self):
        hdr = [0x4500, 0x0073, 0x0000, 0x4000, 0x4011, 0x0000, 0xC0A8, 0x0001, 0xC0A8, 0x00C7]
        hdr[5] = internet_checksum(hdr)
        hdr[0] ^= 0x0100
        assert not verify_checksum(hdr)

    def test_range_check(self):
        with pytest.raises(ValueError):
            internet_checksum([0x10000])
        with pytest.raises(ValueError):
            incremental_update(0x10000, 0, 0)

    @given(st.lists(halfword, min_size=1, max_size=20))
    @settings(max_examples=200)
    def test_computed_checksum_always_verifies(self, words):
        csum = internet_checksum(words)
        assert verify_checksum(words + [csum])

    @given(
        st.lists(halfword, min_size=2, max_size=20),
        st.integers(min_value=0, max_value=19),
        halfword,
    )
    @settings(max_examples=200)
    def test_incremental_patch_verifies(self, words, idx, new_value):
        """Property: an RFC 1624 patched header always verifies.

        (Direct equality with recomputation can differ in the +0/-0
        one's-complement representation -- 0x0000 vs 0xFFFF -- which RFC
        1624 explicitly allows; verification is the semantic contract.)
        """
        idx = idx % len(words)
        old_csum = internet_checksum(words)
        patched = list(words)
        patched[idx] = new_value
        new_csum = incremental_update(old_csum, words[idx], new_value)
        assert verify_checksum(patched + [new_csum])
        # Modulo the +-0 representation, it matches recomputation.
        recomputed = internet_checksum(patched)
        assert new_csum == recomputed or {new_csum, recomputed} <= {0x0000, 0xFFFF}
