"""Per-tile data-cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raw import costs
from repro.raw.memory import CacheStats, DataCache


class TestBasics:
    def test_first_access_misses(self):
        c = DataCache()
        assert c.access(0) == costs.CACHE_MISS_CYCLES
        assert c.stats.misses == 1

    def test_second_access_hits(self):
        c = DataCache()
        c.access(0)
        assert c.access(0) == 0
        assert c.stats.hits == 1

    def test_same_line_hits(self):
        c = DataCache()
        c.access(0)
        # 32-byte lines: bytes 1..31 share line 0.
        assert c.access(31) == 0
        assert c.access(32) == costs.CACHE_MISS_CYCLES

    def test_probe_does_not_mutate(self):
        c = DataCache()
        assert not c.probe(0)
        c.access(0)
        assert c.probe(0)
        assert c.stats.accesses == 1

    def test_flush(self):
        c = DataCache()
        c.access(0)
        c.flush()
        assert not c.probe(0)

    def test_access_latency(self):
        c = DataCache()
        assert c.access_latency(0) == costs.CACHE_MISS_CYCLES
        assert c.access_latency(0) == costs.CACHE_HIT_CYCLES

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            DataCache(size_words=0)
        with pytest.raises(ValueError):
            DataCache(ways=3, size_words=8192, line_bytes=32)


class TestAssociativity:
    def test_two_way_keeps_two_conflicting_lines(self):
        c = DataCache()
        set_stride = c.num_sets * c.line_bytes
        a, b = 0, set_stride  # same set, different tags
        c.access(a)
        c.access(b)
        assert c.access(a) == 0
        assert c.access(b) == 0

    def test_lru_evicts_oldest(self):
        c = DataCache()
        set_stride = c.num_sets * c.line_bytes
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(d)  # evicts a (LRU)
        assert c.access(b) == 0
        assert c.access(a) == costs.CACHE_MISS_CYCLES

    def test_lru_updated_on_hit(self):
        c = DataCache()
        set_stride = c.num_sets * c.line_bytes
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)  # refresh a; b becomes LRU
        c.access(d)  # evicts b
        assert c.access(a) == 0
        assert c.access(b) == costs.CACHE_MISS_CYCLES


class TestTouchRange:
    def test_counts_lines(self):
        c = DataCache()
        stall = c.touch_range(0, 256)  # 8 lines of 32B
        assert stall == 8 * costs.CACHE_MISS_CYCLES
        assert c.touch_range(0, 256) == 0

    def test_unaligned_range_spans_extra_line(self):
        c = DataCache()
        stall = c.touch_range(16, 32)  # straddles lines 0 and 1
        assert stall == 2 * costs.CACHE_MISS_CYCLES

    def test_zero_bytes(self):
        c = DataCache()
        assert c.touch_range(0, 0) == 0


class TestStats:
    def test_hit_rate(self):
        s = CacheStats(hits=3, misses=1)
        assert s.accesses == 4
        assert s.hit_rate == 0.75
        assert s.stall_cycles == costs.CACHE_MISS_CYCLES

    def test_empty_hit_rate(self):
        assert CacheStats().hit_rate == 0.0


@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200)
)
@settings(max_examples=50, deadline=None)
def test_working_set_smaller_than_cache_converges_to_hits(addrs):
    """Property: replaying any bounded address set twice, the second pass
    over a small working set (fits total capacity per set) can only hit
    or miss -- never more misses than distinct lines times passes."""
    c = DataCache()
    distinct_lines = {a // c.line_bytes for a in addrs}
    for a in addrs:
        c.access(a)
    misses_first = c.stats.misses
    assert misses_first >= len(distinct_lines) * 0  # sanity
    assert misses_first <= len(addrs)
    # Misses can never exceed accesses, and hits+misses == accesses.
    assert c.stats.hits + c.stats.misses == len(addrs)


@given(seed=st.integers(min_value=0, max_value=999))
@settings(max_examples=20, deadline=None)
def test_cyclic_buffer_is_resident_after_first_pass(seed):
    """The ingress ring-buffer pattern: cycling over <= capacity bytes
    takes compulsory misses once, then hits forever."""
    c = DataCache()
    region = costs.DMEM_WORDS * 4 // 2  # half the cache
    step = 1024
    for start in range(0, region, step):
        c.touch_range(start, step)
    before = c.stats.misses
    for _ in range(3):
        for start in range(0, region, step):
            assert c.touch_range(start, step) == 0
    assert c.stats.misses == before
