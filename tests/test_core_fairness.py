"""Fairness analysis and the section 5.4 starvation bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import Allocator
from repro.core.fabricsim import FabricSimulator, saturated_uniform
from repro.core.fairness import analyze_service, jains_index
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken, WeightedToken


class TestJainsIndex:
    def test_perfectly_even(self):
        assert jains_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_one_hog(self):
        assert jains_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jains_index([]) == 1.0
        assert jains_index([0, 0]) == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.integers(0, 100, size=6)
            j = jains_index(x)
            assert 1 / 6 - 1e-9 <= j <= 1 + 1e-9 or not np.any(x)


class TestAnalyzeService:
    def _history(self, requests_list, token_start=0):
        ring = RingGeometry(4)
        allocator = Allocator(ring)
        token = RotatingToken(4, start=token_start)
        history = []
        for requests in requests_list:
            alloc = allocator.allocate(requests, token.master)
            history.append((tuple(requests), alloc))
            token.advance()
        return history

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            analyze_service([])

    def test_counts(self):
        history = self._history([(0, 0, 0, 0)] * 8)
        report = analyze_service(history)
        assert report.offered == [8, 8, 8, 8]
        assert sum(report.served) == 8  # one grant per hotspot quantum
        assert report.served == [2, 2, 2, 2]  # token round robin
        assert report.jains == pytest.approx(1.0)

    def test_starvation_bound_hotspot(self):
        history = self._history([(0, 0, 0, 0)] * 40)
        report = analyze_service(history)
        assert report.worst_starvation_gap() == 3  # N-1

    def test_gap_resets_when_idle(self):
        # A port with no traffic accumulates no starvation gap.
        history = self._history([(0, None, 0, 0)] * 12)
        report = analyze_service(history)
        assert report.offered[1] == 0
        assert report.max_gap[1] == 0

    def test_words_weighting(self):
        history = self._history([(0, 0, 0, 0)] * 4)
        words = [{src: 100} for q, (reqs, alloc) in enumerate(history)
                 for src in [next(iter(alloc.grants))]]
        report = analyze_service(history, words_per_grant=words)
        assert sum(report.served_words) == 400


class TestFabricFairness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_uniform_traffic_is_fair(self, seed):
        rng = np.random.default_rng(seed)
        sim = FabricSimulator(keep_history=True)
        sim.run(saturated_uniform(64, rng, exclude_self=True), quanta=2000)
        report = analyze_service(sim.history)
        assert report.jains > 0.99
        assert report.worst_starvation_gap() <= 3

    def test_weighted_token_bounds_stretch(self):
        sim = FabricSimulator(token=WeightedToken([4, 1, 1, 1]), keep_history=True)
        sim.run(lambda port: (0, 64), quanta=2000)
        report = analyze_service(sim.history)
        # Worst wait: the full weight cycle minus your own slot(s).
        assert report.worst_starvation_gap() <= 6
        # Port 0 gets its 4/7 share.
        assert report.served[0] / sum(report.served) == pytest.approx(4 / 7, rel=0.05)


@given(seed=st.integers(0, 1000), quanta=st.integers(20, 200))
@settings(max_examples=25, deadline=None)
def test_starvation_never_exceeds_n_minus_1(seed, quanta):
    """Property (section 5.4): under ANY traffic, a backlogged input is
    served within N-1 quanta of its last service opportunity."""
    rng = np.random.default_rng(seed)
    sim = FabricSimulator(keep_history=True)

    def adversary(port):
        if rng.random() < 0.15:
            return None
        return int(rng.integers(0, 4)), int(rng.integers(1, 64))

    sim.run(adversary, quanta=quanta)
    if sim.history:
        report = analyze_service(sim.history)
        assert report.worst_starvation_gap() <= 3
