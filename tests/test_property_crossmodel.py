"""Cross-model consistency properties.

The repository has three engines for the same fabric (quantum-level
FabricSimulator, phase-level RawRouter, word-level WordLevelRouter) and
a closed-form peak model.  These properties pin them to each other over
randomized workloads -- a change that breaks one model's accounting
breaks a test here even if each model stays self-consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fabricsim import FabricSimulator, saturated_permutation
from repro.core.phases import quantum_cycles
from repro.raw import costs


word_sizes = st.integers(min_value=6, max_value=256)  # >= IPv4 header words
shifts = st.integers(min_value=1, max_value=3)


@given(words=word_sizes, shift=shifts)
@settings(max_examples=30, deadline=None)
def test_fabric_matches_closed_form_peak(words, shift):
    """FabricSimulator under any saturated permutation == the arithmetic
    of the quantum formula (grant expansion included)."""
    sim = FabricSimulator()
    stats = sim.run(saturated_permutation(words, shift), quanta=300, warmup_quanta=30)
    # All four ports stream every quantum with this conflict-free source.
    expansion = min(shift, 4 - shift)
    expected = 4 * words / quantum_cycles(words, expansion)
    assert stats.words_per_cycle == pytest.approx(expected, rel=0.02)


@given(words=word_sizes, shift=shifts, seed=st.integers(0, 99))
@settings(max_examples=10, deadline=None)
def test_router_pipeline_never_beats_fabric(words, shift, seed):
    """The full router (with ingress/egress stages) can equal but never
    exceed the bare fabric's rate -- pipelines add stages, not bandwidth."""
    from repro.router.router import RawRouter
    from repro.traffic import (
        FixedPermutation,
        FixedSize,
        PacketFactory,
        Saturated,
        Workload,
    )

    size_bytes = words * 4
    fabric = FabricSimulator().run(
        saturated_permutation(words, shift), quanta=400, warmup_quanta=40
    )
    rng = np.random.default_rng(seed)
    router = RawRouter(warmup_cycles=10_000)
    router.attach_saturated(
        Workload(FixedPermutation.shift(4, shift), FixedSize(size_bytes), Saturated()),
        PacketFactory(4, rng),
    )
    full = router.run(max_cycles=80_000)
    assert full.gbps <= fabric.gbps * 1.02
    assert full.gbps == pytest.approx(fabric.gbps, rel=0.05)


@given(
    words=st.integers(1, 300),
    quantum=st.integers(8, 256),
)
@settings(max_examples=40, deadline=None)
def test_fragmentation_overhead_formula(words, quantum):
    """Fragmenting a packet into q-word quanta costs exactly one control
    overhead per fragment -- the fabric's measured cycles agree with
    summing the quantum formula over the fragments."""
    sim = FabricSimulator(max_quantum_words=quantum)
    stats = sim.run(saturated_permutation(words, 2), quanta=200, warmup_quanta=20)
    frags = -(-words // quantum)
    per_packet = sum(
        quantum_cycles(min(quantum, words - i * quantum), 2) for i in range(frags)
    )
    expected_wpc = 4 * words / per_packet
    assert stats.words_per_cycle == pytest.approx(expected_wpc, rel=0.03)


@given(seed=st.integers(0, 200), n=st.sampled_from([4, 9, 16]))
@settings(max_examples=15, deadline=None)
def test_clos_conserves_packets(seed, n):
    """Clos composition: every delivered packet's words are intact and
    per-port counters sum to the totals, for any square size."""
    from repro.core.compose import ClosFabric
    from repro.core.fabricsim import saturated_uniform

    k = int(round(n ** 0.5))
    rng = np.random.default_rng(seed)
    clos = ClosFabric(k=k)
    stats = clos.run(
        saturated_uniform(32, rng, n=n, exclude_self=True),
        quanta=150,
        warmup_quanta=15,
    )
    assert stats.delivered_words == stats.delivered_packets * 32
    assert sum(stats.per_port_packets) == stats.delivered_packets
    assert sum(stats.per_port_words) == stats.delivered_words
