"""Property tests for the distributed telemetry plane's merge algebra.

The coordinator folds worker recorder states in arrival order, workers
stream cumulative partial states mid-run, and ``repro top`` re-folds
the latest snapshot set every frame -- all of which is sound only if
``Telemetry.merge_state`` is associative and commutative over
distinct-worker states.  Hypothesis drives randomized recorder scripts
through every component (event ring, counters/histograms/snapshots,
journeys with port/class dimensions, kernel profile) and checks both
laws, then the end-to-end acceptance: a space-partitioned run under
telemetry is bit-identical across P in {1, 2, 4} and to the
telemetry-off serial reference.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import SpaceSpec, run_space, run_space_serial
from repro.telemetry import runtime
from repro.telemetry.events import N_KINDS

# Deliberately tiny so merges exercise ring trimming and reservoir
# truncation, not just concatenation.
CAPACITY = 16
DETAIL_LIMIT = 4

COUNTER_NAMES = ("fabric.tokens_passed", "space.windows", "port.drops")
HIST_NAMES = ("queue_wait", "grant_gap")
SUBJECTS = ("port0", "port1", "fabric")
PORT_CLASSES = ("gold", "silver", "silver", "bronze")


@st.composite
def worker_activity(draw):
    """A deterministic script of recorder activity for one worker."""
    ops = []
    n = draw(st.integers(min_value=0, max_value=25))
    cycle = 0
    key = 0
    for _ in range(n):
        cycle += draw(st.integers(min_value=0, max_value=9))
        kind = draw(st.integers(min_value=0, max_value=4))
        if kind == 0:
            ops.append(("emit", cycle,
                        draw(st.integers(min_value=0, max_value=N_KINDS - 1)),
                        draw(st.sampled_from(SUBJECTS))))
        elif kind == 1:
            ops.append(("count", draw(st.sampled_from(COUNTER_NAMES)),
                        draw(st.integers(min_value=1, max_value=5))))
        elif kind == 2:
            ops.append(("hist", draw(st.sampled_from(HIST_NAMES)),
                        draw(st.integers(min_value=0, max_value=10_000))))
        elif kind == 3:
            ops.append(("kernel",
                        draw(st.integers(min_value=0, max_value=5)),
                        draw(st.integers(min_value=1, max_value=4)),
                        draw(st.integers(min_value=0, max_value=7))))
        else:
            ops.append(("journey", key,
                        draw(st.integers(min_value=0, max_value=3)),
                        cycle,
                        draw(st.integers(min_value=2, max_value=40)),
                        draw(st.sampled_from(("delivered", "dead_port")))))
            key += 1
    return ops


def apply_ops(ops, tel):
    """Replay one worker's script into a fresh local recorder."""
    tel.journeys.set_port_classes(PORT_CLASSES)
    for op in ops:
        if op[0] == "emit":
            _, cycle, kind, subject = op
            tel.events.emit(cycle, kind, subject)
            tel.registry.maybe_snapshot(cycle)
        elif op[0] == "count":
            tel.registry.count(op[1], op[2])
        elif op[0] == "hist":
            tel.registry.histogram(op[1]).record(op[2])
        elif op[0] == "kernel":
            _, idx, n, peak = op
            tel.kernel.cmd_counts[idx] += n
            tel.kernel.bucket_drains += 1
            tel.kernel.bucket_events += n
            if peak > tel.kernel.bucket_peak:
                tel.kernel.bucket_peak = peak
        else:
            _, key, src, cycle, dur, outcome = op
            j = tel.journeys
            j.arrive(key, src, cycle)
            j.lookup(key, (src + 1) % 4, 256, cycle + 1)
            j.enqueue(key, cycle + 1)
            j.hop(key, cycle + 1 + dur // 2)
            if outcome == "delivered":
                j.depart(key, cycle + 1 + dur)
            else:
                j.drop(key, outcome, cycle + 1 + dur)
    return tel


def build_states(scripts):
    """One shipped state per worker, with distinct worker ids."""
    states = []
    for w, ops in enumerate(scripts):
        tel = runtime.Telemetry(capacity=CAPACITY, snapshot_interval=32,
                                detail_limit=DETAIL_LIMIT)
        apply_ops(ops, tel)
        states.append(tel.to_state(worker=w, meta={"ops": len(ops)}))
    return states


def fold(states):
    """Fold shipped states into a fresh coordinator recorder."""
    tel = runtime.Telemetry(capacity=CAPACITY, detail_limit=DETAIL_LIMIT)
    for state in states:
        tel.merge_state(state)
    return tel


def fingerprint(tel, with_workers=True):
    """Canonical JSON over everything the merge is supposed to preserve."""
    tel.journeys.finalize()
    doc = {
        "summary": tel.summary(),
        "journeys": tel.journeys.to_dict(),
        "events": [list(e) for e in tel.events.events()],
        "events_dropped": tel.events.dropped,
    }
    if not with_workers:
        # Re-exported intermediate states keep component data but not the
        # coordinator's worker-provenance table.
        doc["summary"].pop("workers", None)
    return json.dumps(doc, sort_keys=True, default=repr)


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(scripts=st.lists(worker_activity(), min_size=2, max_size=4),
           data=st.data())
    def test_merge_commutative(self, scripts, data):
        states = build_states(scripts)
        shuffled = data.draw(st.permutations(states))
        assert fingerprint(fold(states)) == fingerprint(fold(shuffled))

    @settings(max_examples=50, deadline=None)
    @given(scripts=st.lists(worker_activity(), min_size=3, max_size=3))
    def test_merge_associative(self, scripts):
        a, b, c = build_states(scripts)
        # (a + b) + c  vs  a + (b + c), with the parenthesized fold
        # shipped through to_state like a real intermediate aggregator.
        left = fold([fold([a, b]).to_state(), c])
        right = fold([a, fold([b, c]).to_state()])
        assert (fingerprint(left, with_workers=False)
                == fingerprint(right, with_workers=False))

    @settings(max_examples=50, deadline=None)
    @given(scripts=st.lists(worker_activity(), min_size=1, max_size=3))
    def test_merge_matches_single_recorder_totals(self, scripts):
        # Totals (not ring contents, which trim differently) must equal a
        # single recorder that saw every worker's samples.
        merged = fold(build_states(scripts))
        merged.journeys.finalize()
        one = runtime.Telemetry(capacity=CAPACITY, snapshot_interval=0,
                                detail_limit=DETAIL_LIMIT)
        for ops in scripts:
            apply_ops(ops, one)
        assert merged.events.emitted == one.events.emitted
        assert merged.events.kind_counts == one.events.kind_counts
        assert (merged.journeys.completed + merged.journeys.dropped
                == one.journeys.completed + one.journeys.dropped)
        for name in COUNTER_NAMES:
            assert (merged.registry.counter(name)
                    == one.registry.counter(name))
        for name in HIST_NAMES:
            assert (merged.registry.histogram(name).count
                    == one.registry.histogram(name).count)
        assert merged.kernel.cmd_counts == one.kernel.cmd_counts


SOURCES = {
    "permutation": {"kind": "permutation", "words": 64, "shift": 3},
    "uniform": {"kind": "uniform_counter", "words": 48, "seed": 11},
}


def space_spec(partitions, source_key, latency, quanta):
    return SpaceSpec(
        k=4,
        latency=latency,
        partitions=partitions,
        source=SpaceSpec.pack_source(SOURCES[source_key]),
        quanta=quanta,
        warmup_quanta=10,
    )


class TestSpacePartitionIdentity:
    @settings(max_examples=3, deadline=None)
    @given(source=st.sampled_from(sorted(SOURCES)),
           latency=st.integers(min_value=1, max_value=2),
           quanta=st.integers(min_value=80, max_value=120))
    def test_bit_identical_across_partitions(self, source, latency, quanta):
        """P in {1, 2, 4} under telemetry: same stats as the
        telemetry-off serial reference, same merged journey tables."""
        baseline = run_space_serial(
            space_spec(1, source, latency, quanta)
        ).counters()
        tables = {}
        for parts in (1, 2, 4):
            spec = space_spec(parts, source, latency, quanta)
            with runtime.capture() as tel:
                stats, info = run_space(spec)
            assert stats.counters() == baseline
            assert (info.serial_fallback
                    == (parts == 1)), info.fallback_reason
            tables[parts] = (
                {s: h.to_dict() for s, h in tel.journeys.stage_hist.items()},
                {k: h.to_dict() for k, h in tel.journeys.dim_hist.items()},
                [j.to_dict() for j in tel.journeys.detailed],
                (tel.journeys.completed, tel.journeys.dropped),
            )
        assert tables[1] == tables[2] == tables[4]
