"""Transport-layer invariants of the space-partitioned fabric.

The contract under test (ISSUE 10 / DESIGN.md §15): every transport
backend -- pipe, shm ring, hub-relayed socket -- moves the token-window
protocol bit-identically to the single-process reference at every
partition count; adaptive window coalescing never changes what a
receiver observes; the torus geometry pins its channel table; and the
fault guard admits exactly the plans the engine can realize.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core.spacetopo import build_topology, torus_topology
from repro.engines import WorkloadSpec, run_config
from repro.faults import FaultEvent, FaultPlan
from repro.parallel import (
    SpaceSpec,
    SpaceWorkerPool,
    TRANSPORTS,
    auto_partitions,
    merge_backend_counters,
    run_space,
    run_space_inprocess,
    run_space_serial,
    serve_worker,
    transport_name,
)
from repro.parallel.space_shard import BACKEND_COUNTER_KEYS, backend_counters


def _result_key(res):
    return (res.cycles, res.delivered_packets, res.delivered_words,
            tuple(res.per_port_packets))


def spec_for(partitions: int, k: int = 4, geometry: str = "clos",
             quanta: int = 120, warmup: int = 20, **kw) -> SpaceSpec:
    return SpaceSpec(
        k=k,
        geometry=geometry,
        latency=2,
        partitions=partitions,
        source=SpaceSpec.pack_source(
            {"kind": "permutation", "words": 48, "shift": 5}
        ),
        quanta=quanta,
        warmup_quanta=warmup,
        **kw,
    )


# ---------------------------------------------------------------------------
# Cross-backend bit-identity.
# ---------------------------------------------------------------------------
class TestBackendIdentity:
    @pytest.mark.parametrize("transport", list(TRANSPORTS))
    @pytest.mark.parametrize("partitions", [1, 2, 4, 8])
    def test_backend_matches_serial(self, transport, partitions):
        spec = spec_for(partitions)
        ref = run_space_serial(spec)
        got, info = run_space(spec, transport=transport)
        assert ref.counters() == got.counters()
        assert info.transport == transport
        if partitions > 1:
            assert not info.serial_fallback
            assert sum(info.bytes_moved) > 0

    def test_shm_pool_reuse_stays_identical(self):
        spec = spec_for(4)
        ref = run_space_serial(spec)
        pool = SpaceWorkerPool(4, transport="shm")
        try:
            for _ in range(2):
                got, info = run_space(spec, pool=pool)
                assert got.counters() == ref.counters()
                assert info.transport == "shm"
        finally:
            pool.close()

    def test_transport_name_parsing(self):
        assert transport_name("pipe") == "pipe"
        assert transport_name("shm") == "shm"
        assert transport_name("socket") == "socket"
        assert transport_name("socket:127.0.0.1:9999") == "socket"
        with pytest.raises(ValueError, match="transport"):
            transport_name("carrier-pigeon")

    def test_simconfig_validates_transport(self):
        assert SimConfig(transport="socket:h:1").transport == "socket:h:1"
        with pytest.raises(ValueError, match="transport"):
            SimConfig(transport="bogus")

    def test_serve_worker_rejects_bad_address(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            serve_worker("nocolon")
        with pytest.raises(ValueError, match="HOST:PORT"):
            serve_worker("host:notaport")


# ---------------------------------------------------------------------------
# Adaptive window coalescing.
# ---------------------------------------------------------------------------
class TestAdaptiveWindow:
    def test_inprocess_coalesces_and_matches_serial(self):
        # Toposorted in-process execution runs producers to completion
        # first, so consumers see every batch already waiting and the
        # adaptive path must coalesce nearly the whole timeline.
        spec = spec_for(2)
        ref = run_space_serial(spec)
        got, info = run_space_inprocess(spec)
        assert ref.counters() == got.counters()
        assert sum(info.coalesced_rounds) > 0

    def test_disabling_adaptive_is_bit_identical(self):
        base = spec_for(3)
        off = spec_for(3, adaptive_window=False)
        got_a, info_a = run_space(base)
        got_b, info_b = run_space(off)
        assert got_a.counters() == got_b.counters()
        assert sum(info_b.coalesced_rounds) == 0

    def test_max_coalesce_bounds_the_stride(self):
        spec = spec_for(2, max_coalesce=2, quanta=200)
        ref = run_space_serial(spec)
        got, info = run_space_inprocess(spec)
        assert ref.counters() == got.counters()
        # A stride cap of 2 coalesces at most every other round.
        assert max(info.coalesced_rounds) <= info.rounds // 2

    def test_max_coalesce_must_be_positive(self):
        with pytest.raises(ValueError, match="max_coalesce"):
            spec_for(2, max_coalesce=0)


# ---------------------------------------------------------------------------
# Adaptive partition count.
# ---------------------------------------------------------------------------
class TestAutoPartitions:
    def test_bounded_by_preference_and_cores(self, monkeypatch):
        import os

        topo = build_topology("clos", 8)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert auto_partitions(topo) == topo.preferred_partitions == 8
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert auto_partitions(topo) == 3
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert auto_partitions(topo) == 1

    def test_engine_partitions_zero_is_auto(self):
        cfg = SimConfig(ports=16, fidelity="space", partitions=0)
        res = run_config(cfg, WorkloadSpec(quanta=60))
        sp = res.extra["space_shard"]
        assert sp["partitions_auto"] is True
        assert sp["partitions"] >= 1
        ref = run_config(
            SimConfig(ports=16, fidelity="space", partitions=1),
            WorkloadSpec(quanta=60),
        )
        assert _result_key(res) == _result_key(ref)

    def test_negative_partitions_rejected(self):
        with pytest.raises(ValueError, match="partitions"):
            SimConfig(partitions=-1)


# ---------------------------------------------------------------------------
# Torus geometry.
# ---------------------------------------------------------------------------
class TestTorus:
    def test_golden_channel_table_k4(self):
        topo = torus_topology(4, latency=3)
        assert topo.num_nodes == 4
        assert topo.num_ports == 8
        assert topo.preferred_partitions == 4
        got = [
            (ch.cid, ch.src_node, ch.src_leg, ch.dst_node, ch.dst_leg,
             ch.latency)
            for ch in topo.channels
        ]
        assert got == [
            (0, 0, 0, 1, 1, 3),
            (1, 0, 1, 3, 0, 3),
            (2, 1, 0, 2, 1, 3),
            (3, 1, 1, 0, 0, 3),
            (4, 2, 0, 3, 1, 3),
            (5, 2, 1, 1, 0, 3),
            (6, 3, 0, 0, 1, 3),
            (7, 3, 1, 2, 0, 3),
        ]

    def test_route_shortest_path_prefers_plus_direction(self):
        topo = torus_topology(4)
        # dest ports 4 and 5 live on node 2: local delivery on node 2,
        # and an antipodal tie at node 0 resolves to the + direction.
        assert topo.route(2, 4) == 2
        assert topo.route(2, 5) == 3
        assert topo.route(0, 4) == 0
        assert topo.route(1, 4) == 0
        assert topo.route(3, 4) == 1

    def test_build_topology_dispatch(self):
        assert build_topology("torus", 5).geometry == "torus"
        with pytest.raises(ValueError, match="torus"):
            build_topology("mesh", 4)
        with pytest.raises(ValueError, match=">= 3"):
            torus_topology(2)

    def test_torus_distributed_matches_serial(self):
        spec = spec_for(2, k=5, geometry="torus")
        ref = run_space_serial(spec)
        got, info = run_space(spec)
        assert ref.counters() == got.counters()
        assert not info.serial_fallback


# ---------------------------------------------------------------------------
# Fault-plan guard.
# ---------------------------------------------------------------------------
def _channel_for(owner_equal: bool, partitions: int):
    """A clos k=4 channel whose endpoints share (or straddle) partition
    blocks at the given partition count."""
    topo = build_topology("clos", 4)
    owner = topo.node_owner(topo.partition(partitions))
    for ch in topo.channels:
        if (owner[ch.src_node] == owner[ch.dst_node]) == owner_equal:
            return ch
    raise AssertionError("no such channel")


class TestFaultGuard:
    def test_intra_partition_link_fault_is_realized(self):
        ch = _channel_for(owner_equal=True, partitions=2)
        plan = FaultPlan(events=(
            FaultEvent(cycle=30, kind="link_down",
                       target=f"link:{ch.cid}", duration=40),
        ))
        wl = WorkloadSpec(quanta=160, fault_plan=plan)
        clean = run_config(
            SimConfig(ports=16, fidelity="space", partitions=2),
            WorkloadSpec(quanta=160),
        )
        faulted = run_config(
            SimConfig(ports=16, fidelity="space", partitions=2), wl
        )
        serial = run_config(
            SimConfig(ports=16, fidelity="space", partitions=1), wl
        )
        # The fault perturbs the run, and the distributed realization is
        # bit-identical to the serial one.
        assert _result_key(faulted) != _result_key(clean)
        assert _result_key(faulted) == _result_key(serial)

    def test_cross_partition_link_fault_refused_loudly(self):
        ch = _channel_for(owner_equal=False, partitions=2)
        wl = WorkloadSpec(quanta=60, fault_plan=FaultPlan(events=(
            FaultEvent(cycle=10, kind="link_down",
                       target=f"link:{ch.cid}", duration=20),
        )))
        with pytest.raises(ValueError, match="cross-partition"):
            run_config(
                SimConfig(ports=16, fidelity="space", partitions=2), wl
            )

    def test_unsupported_fault_kind_refused(self):
        wl = WorkloadSpec(quanta=60, fault_plan=FaultPlan(events=(
            FaultEvent(cycle=10, kind="token_loss"),
        )))
        with pytest.raises(ValueError, match="cannot realize"):
            run_config(
                SimConfig(ports=16, fidelity="space", partitions=2), wl
            )


# ---------------------------------------------------------------------------
# Per-backend counter merge.
# ---------------------------------------------------------------------------
COUNTERS = st.fixed_dictionaries(
    {key: st.integers(0, 10**9) for key in BACKEND_COUNTER_KEYS}
)


class TestCounterMerge:
    @settings(max_examples=50, deadline=None)
    @given(a=COUNTERS, b=COUNTERS, c=COUNTERS)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        ab_c = merge_backend_counters(merge_backend_counters(a, b), c)
        a_bc = merge_backend_counters(a, merge_backend_counters(b, c))
        assert ab_c == a_bc
        assert merge_backend_counters(a, b) == merge_backend_counters(b, a)

    def test_backend_counters_shape(self):
        spec = spec_for(2)
        _, info = run_space(spec)
        counters = backend_counters(info)
        assert set(counters) == set(BACKEND_COUNTER_KEYS)
        assert counters["bytes_moved"] == sum(info.bytes_moved)
        assert counters["boundary_flits"] == sum(info.boundary_flits)


# ---------------------------------------------------------------------------
# Shm ring unit behavior.
# ---------------------------------------------------------------------------
class TestShmRing:
    def _ring(self, flit_capacity, batch_capacity=8):
        from multiprocessing import shared_memory

        from repro.parallel.transport import ShmRingHandle

        handle = ShmRingHandle(
            "repro-test-ring", flit_capacity, batch_capacity
        )
        seg = shared_memory.SharedMemory(
            name=handle.name, create=True, size=handle.nbytes
        )
        seg.buf[:handle.nbytes] = b"\x00" * handle.nbytes
        return seg, handle.attach()

    def test_roundtrip_plain_tagged_empty(self):
        seg, ring = self._ring(64)
        try:
            batches = [
                [(1, 5, (3, 64, False)), (2, 5, (7, 32, True))],
                [(1, 6, (3, 64, True, 99)), (4, 6, (0, 8, False))],
                [],
            ]
            for batch in batches:
                ring.send_batch(batch)
                assert ring.recv_batch() == batch
        finally:
            ring.close()
            seg.close()
            seg.unlink()

    def test_oversized_batch_streams_through_small_ring(self):
        # A batch larger than the flit ring must stream in chunks while
        # a concurrent consumer drains -- capacity is a throughput knob,
        # not a correctness bound.
        seg, ring = self._ring(16)
        try:
            big = [(i % 5, i, (i % 9, i * 2, i % 2 == 0))
                   for i in range(100)]
            sender = threading.Thread(target=ring.send_batch, args=(big,))
            sender.start()
            got = ring.recv_batch()
            sender.join(timeout=10)
            assert not sender.is_alive()
            assert got == big
        finally:
            ring.close()
            seg.close()
            seg.unlink()

    def test_bytes_accounting(self):
        from repro.parallel.transport import FLIT_ITEMSIZE

        seg, ring = self._ring(64)
        try:
            assert ring.send_batch([]) == 8
            moved = ring.send_batch([(1, 2, (3, 4, True))])
            assert moved == 8 + FLIT_ITEMSIZE
            ring.recv_batch()
            ring.recv_batch()
        finally:
            ring.close()
            seg.close()
            seg.unlink()
