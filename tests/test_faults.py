"""The fault-injection subsystem: determinism, recovery, degraded mode.

Three properties anchor everything here:

* **No-fault identity** -- an empty plan (or no plan) leaves every
  engine's results bit-for-bit unchanged: the fault-free fast path is
  not perturbed by the subsystem existing.
* **Determinism** -- the same seed and the same plan give identical
  results on repeat runs, and on the word-level engine the burst and
  word-at-a-time paths stay cycle-identical *through* fault windows.
* **Bounded recovery** -- token loss regenerates within a fixed
  protocol, a dead port degrades throughput proportionally (within 5%
  of a genuine 3-port run) and never deadlocks.
"""

import json

import pytest

from repro.config import SimConfig
from repro.engines import WorkloadSpec, run_config
from repro.faults import FaultEvent, FaultPlan, load_plan, resolve_plan
from repro.sim import Channel, DeadlockError, Get, Put, Simulator, Timeout


# ---------------------------------------------------------------------------
# Plans: validation, JSON round-trip, seeded generation.
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_events_sorted_and_frozen(self):
        plan = FaultPlan(
            events=(
                FaultEvent(cycle=500, kind="corrupt", target="input:1"),
                FaultEvent(cycle=100, kind="link_down", target="input:0", duration=50),
            )
        )
        assert [e.cycle for e in plan.events] == [100, 500]
        with pytest.raises(Exception):
            plan.events = ()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(cycle=-1, kind="corrupt")
        with pytest.raises(ValueError):
            FaultEvent(cycle=0, kind="not_a_kind")
        with pytest.raises(ValueError):
            FaultEvent(cycle=0, kind="link_down", duration=0)  # windowed
        # token_loss always targets the token.
        assert FaultEvent(cycle=0, kind="token_loss").target == "token"

    def test_port_parsing(self):
        assert FaultEvent(cycle=0, kind="stall", target="port:2", duration=1).port == 2
        assert FaultEvent(cycle=0, kind="corrupt", target="input:3").port == 3
        assert FaultEvent(cycle=0, kind="corrupt", target="link:sn1.t5->t6").port is None

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            events=(
                FaultEvent(cycle=10, kind="link_down", target="input:0", duration=20),
                FaultEvent(cycle=40, kind="corrupt", target="input:1", param=5),
                FaultEvent(cycle=70, kind="token_loss"),
            ),
            name="round-trip",
            seed=7,
        )
        path = str(tmp_path / "plan.json")
        plan.to_json(path)
        again = load_plan(path)
        assert again == plan
        with open(path) as fh:
            assert json.load(fh)["schema"] == "repro-fault-plan/1"

    def test_generate_deterministic(self):
        rates = {"link_down": 2, "corrupt": 1.5, "token_loss": 1}
        a = FaultPlan.generate(seed=3, horizon=100_000, rates=rates)
        b = FaultPlan.generate(seed=3, horizon=100_000, rates=rates)
        c = FaultPlan.generate(seed=4, horizon=100_000, rates=rates)
        assert a == b
        assert a != c
        assert a.events  # the integer rates guarantee events

    def test_resolve_plan_normalizes(self, tmp_path):
        assert resolve_plan(None) is None
        assert resolve_plan(FaultPlan.empty()) is None
        plan = FaultPlan(events=(FaultEvent(cycle=1, kind="token_loss"),))
        assert resolve_plan(plan) is plan
        assert resolve_plan(plan.to_dict()) == plan
        path = str(tmp_path / "p.json")
        plan.to_json(path)
        assert resolve_plan(path) == plan
        with pytest.raises(TypeError):
            resolve_plan(42)

    def test_boundaries_and_windows(self):
        plan = FaultPlan(
            events=(
                FaultEvent(cycle=100, kind="link_down", target="input:0", duration=50),
                FaultEvent(cycle=300, kind="corrupt", target="input:1"),
            )
        )
        assert plan.boundaries() == (100, 150, 300)
        assert plan.window_active(120)
        assert not plan.window_active(200)


# ---------------------------------------------------------------------------
# Channel-level fault mechanics.
# ---------------------------------------------------------------------------
class TestChannelFaults:
    def test_down_holds_words_and_blocks_puts(self):
        sim = Simulator()
        ch = sim.channel("ch", capacity=4, latency=1)
        got = []

        def producer():
            yield Put(ch, 1)
            yield Put(ch, 2)

        def consumer():
            got.append((yield Get(ch)))
            got.append((yield Get(ch)))

        def saboteur():
            yield Timeout(1)
            ch.fault_down(until=50)
            yield Timeout(49)
            ch.fault_restore()
            sim._service_channel(ch)

        sim.add_process(producer(), "prod")
        sim.add_process(consumer(), "cons")
        sim.add_process(saboteur(), "chaos")
        sim.run(raise_on_deadlock=False)
        assert got == [1, 2]
        assert sim.now >= 50  # nothing crossed the link during the window

    def test_corrupt_head(self):
        ch = Channel("ch", capacity=2)
        assert ch.fault_corrupt_head(lambda v: v ^ 1) == (False, None)  # empty
        ch.push(0b1010, now=0)
        hit, value = ch.fault_corrupt_head(lambda v: v ^ 1)
        assert (hit, value) == (True, 0b1011)

    def test_restore_is_idempotent(self):
        ch = Channel("ch", capacity=3)
        assert ch.fault_restore() is False  # not down
        ch.fault_down(until=10)
        assert ch.capacity == 0 and ch.fault_active
        assert ch.fault_restore() is True
        assert ch.capacity == 3 and not ch.fault_active


# ---------------------------------------------------------------------------
# DeadlockError enrichment (satellite: per-channel occupancy + cycles).
# ---------------------------------------------------------------------------
class TestDeadlockReport:
    def test_message_names_channels_and_block_cycles(self):
        sim = Simulator()
        a = sim.channel("chan-a")
        b = sim.channel("chan-b")

        def p1():
            yield Timeout(7)
            yield Get(a)
            yield Put(b, 1)

        def p2():
            yield Get(b)
            yield Put(a, 1)

        sim.add_process(p1(), name="p-one")
        sim.add_process(p2(), name="p-two")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        msg = str(exc.value)
        assert "chan-a" in msg and "chan-b" in msg
        assert "p-one" in msg and "p-two" in msg
        assert "blocked since cycle 7" in msg  # p-one parked after its timeout
        assert "blocked since cycle 0" in msg
        assert "0/1 words" in msg  # occupancy/capacity of the empty channels
        assert len(exc.value.blocked) == 2


# ---------------------------------------------------------------------------
# Engine-level: empty-plan identity and run determinism.
# ---------------------------------------------------------------------------
def _result_key(res):
    return (
        res.cycles,
        res.delivered_packets,
        res.delivered_words,
        res.gbps,
        tuple(res.per_port_packets),
    )


MIXED_PLAN = FaultPlan(
    events=(
        FaultEvent(cycle=40_000, kind="link_down", target="input:1", duration=3_000),
        FaultEvent(cycle=50_000, kind="corrupt", target="input:2", param=4),
        FaultEvent(cycle=60_000, kind="token_loss"),
    ),
    name="mixed",
)


class TestEngineIdentityAndDeterminism:
    @pytest.mark.parametrize(
        "config,workload",
        [
            (SimConfig(seed=1), WorkloadSpec(pattern="uniform", quanta=400)),
            (
                SimConfig(fidelity="router", seed=1),
                WorkloadSpec(pattern="uniform", packets=150),
            ),
            (
                SimConfig(fidelity="wordlevel", seed=1),
                WorkloadSpec(cycles=20_000, warmup_cycles=4_000),
            ),
        ],
        ids=["fabric", "router", "wordlevel"],
    )
    def test_empty_plan_bit_identical(self, config, workload):
        plain = run_config(config, workload)
        empty = run_config(config, workload.replace(fault_plan=FaultPlan.empty()))
        assert _result_key(plain) == _result_key(empty)
        assert "resilience" not in empty.extra

    @pytest.mark.parametrize(
        "config,workload",
        [
            (
                SimConfig(seed=5),
                WorkloadSpec(pattern="uniform", quanta=500, fault_plan=MIXED_PLAN),
            ),
            (
                SimConfig(fidelity="router", seed=5),
                WorkloadSpec(
                    pattern="uniform",
                    packets=200,
                    fault_plan=FaultPlan(
                        events=(
                            FaultEvent(cycle=35_000, kind="link_down",
                                       target="input:1", duration=2_000),
                            FaultEvent(cycle=40_000, kind="corrupt",
                                       target="input:2", param=4),
                        ),
                        name="phase-det",
                    ),
                ),
            ),
        ],
        ids=["fabric", "router"],
    )
    def test_same_seed_same_plan_is_deterministic(self, config, workload):
        a = run_config(config, workload)
        b = run_config(config, workload)
        assert _result_key(a) == _result_key(b)
        assert a.extra["resilience"] == b.extra["resilience"]
        assert a.extra["resilience"]["faults_injected"] == len(workload.fault_plan)

    def test_workload_dict_round_trips_plan(self):
        wl = WorkloadSpec(fault_plan=MIXED_PLAN)
        d = wl.to_dict()
        assert d["fault_plan"]["schema"] == "repro-fault-plan/1"
        assert resolve_plan(d["fault_plan"]) == MIXED_PLAN


# ---------------------------------------------------------------------------
# Word-level: burst/non-burst identity through fault windows.
# ---------------------------------------------------------------------------
class TestWordLevelFaults:
    PLAN = FaultPlan(
        events=(
            FaultEvent(cycle=4_000, kind="link_down", target="input:1", duration=500),
            FaultEvent(cycle=7_000, kind="corrupt", target="input:2", param=7),
            FaultEvent(cycle=9_000, kind="stall", target="egress:0", duration=300),
        ),
        name="wl",
    )

    @staticmethod
    def _run(use_bursts, plan, cycles=14_000):
        from repro.router.wordlevel import WordLevelRouter, permutation_source

        router = WordLevelRouter(
            permutation_source(256), use_bursts=use_bursts, faults=plan
        )
        res = router.run(cycles)
        return router, res

    def test_bursts_identical_through_fault_windows(self):
        rb, burst = self._run(True, self.PLAN)
        rw, word = self._run(False, self.PLAN)
        assert (
            burst.delivered_packets,
            burst.delivered_words,
            burst.per_port_packets,
            burst.cycles,
        ) == (
            word.delivered_packets,
            word.delivered_words,
            word.per_port_packets,
            word.cycles,
        )
        assert rb.resilience.to_dict() == rw.resilience.to_dict()

    def test_corruption_detected_at_line_card(self):
        router, _ = self._run(True, self.PLAN)
        assert router.corrupt_drops == 1
        assert router.resilience.drops == {"corrupt": 1}
        assert router.resilience.faults_missed == 0
        assert router.resilience.unrecovered == 0

    def test_rejects_unsupported_kinds(self):
        plan = FaultPlan(events=(FaultEvent(cycle=100, kind="token_loss"),))
        with pytest.raises(ValueError, match="token_loss"):
            self._run(True, plan)


# ---------------------------------------------------------------------------
# Recovery: token regeneration and dead-port degraded mode.
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_token_loss_recovers_bounded_fabric(self):
        res = run_config(
            SimConfig(seed=0),
            WorkloadSpec(
                pattern="uniform",
                quanta=600,
                fault_plan=FaultPlan(
                    events=(FaultEvent(cycle=60_000, kind="token_loss"),)
                ),
            ),
        )
        resil = res.extra["resilience"]
        assert resil["unrecovered"] == 0
        # Detection within a quantum, repair in ports+1 idle quanta.
        assert 0 < resil["mttr_cycles"] <= 5_000

    def test_token_loss_recovers_bounded_router(self):
        res = run_config(
            SimConfig(fidelity="router", seed=0),
            WorkloadSpec(
                pattern="uniform",
                packets=150,
                fault_plan=FaultPlan(
                    events=(FaultEvent(cycle=36_000, kind="token_loss"),)
                ),
            ),
        )
        resil = res.extra["resilience"]
        assert resil["faults_injected"] == 1
        assert resil["unrecovered"] == 0
        assert 0 < resil["mttr_cycles"] <= 5_000

    def test_dead_port_within_5pct_of_3port_fabric(self):
        # shift=1 permutation: killing port 3 leaves a clean 3-flow
        # permutation, directly comparable to a genuine 3-port run.
        base = WorkloadSpec(pattern="permutation", shift=1, quanta=1200)
        ref3 = run_config(SimConfig(seed=0, ports=3), base)
        dead = run_config(
            SimConfig(seed=0, ports=4),
            base.replace(
                fault_plan=FaultPlan(
                    events=(
                        FaultEvent(cycle=40_000, kind="port_down", target="port:3"),
                    )
                )
            ),
        )
        assert abs(dead.gbps - ref3.gbps) / ref3.gbps <= 0.05
        assert dead.extra["resilience"]["unrecovered"] == 0

    def test_dead_port_router_no_deadlock(self):
        """Phase level: kill one port mid-run; the run completes, the
        survivors keep forwarding, dead-bound traffic is dropped."""
        res = run_config(
            SimConfig(fidelity="router", seed=2),
            WorkloadSpec(
                pattern="uniform",
                packets=200,
                fault_plan=FaultPlan(
                    events=(
                        FaultEvent(cycle=35_000, kind="port_down", target="port:3"),
                    )
                ),
            ),
        )
        assert res.delivered_packets >= 200  # completed, no deadlock
        resil = res.extra["resilience"]
        assert resil["unrecovered"] == 0
        assert res.extra["drops"]["dead_port"] > 0
        # The dead egress stops delivering; the other three keep going.
        assert min(res.per_port_packets[:3]) > 0


# ---------------------------------------------------------------------------
# Sweep integration (satellite: fault plans as a grid axis).
# ---------------------------------------------------------------------------
class TestSweepIntegration:
    def test_build_cell_routes_fault_plan(self, tmp_path):
        from repro.sweep import build_cell, parse_grid

        path = str(tmp_path / "tok.json")
        FaultPlan(events=(FaultEvent(cycle=30_000, kind="token_loss"),)).to_json(path)
        grid = parse_grid([f"faults={path}"])
        assert grid == {"fault_plan": [path]}
        config, workload = build_cell({"fault_plan": path, "quanta": 300})
        assert workload.fault_plan == path
        assert workload.quanta == 300
        res = run_config(config, workload)
        assert res.extra["resilience"]["faults_injected"] == 1
