"""In-fabric stream transforms (section 8.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compute import ByteSwap, Identity, RunningChecksum, XorCipher
from repro.core.phases import DEFAULT_TIMING

word = st.integers(min_value=0, max_value=0xFFFFFFFF)
words = st.lists(word, min_size=0, max_size=200)


class TestIdentity:
    def test_passthrough(self):
        assert Identity().apply([1, 2, 3]) == [1, 2, 3]

    def test_unit_cost(self):
        assert Identity().cycles_per_word == 1


class TestXorCipher:
    def test_changes_payload(self):
        c = XorCipher(seed=1)
        data = [0] * 16
        assert c.apply(data) != data

    def test_deterministic_per_seed(self):
        a = XorCipher(seed=7).apply([1, 2, 3])
        b = XorCipher(seed=7).apply([1, 2, 3])
        c = XorCipher(seed=8).apply([1, 2, 3])
        assert a == b != c

    @given(words, st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=100)
    def test_involution(self, data, seed):
        """encrypt(encrypt(x)) == x for the same keystream seed."""
        c = XorCipher(seed)
        assert c.apply(c.apply(data)) == data

    @given(words, st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=50)
    def test_stays_32_bit(self, data, seed):
        for w in XorCipher(seed).apply(data):
            assert 0 <= w <= 0xFFFFFFFF


class TestByteSwap:
    def test_known_value(self):
        assert ByteSwap().apply([0x01020304]) == [0x04030201]

    @given(words)
    @settings(max_examples=100)
    def test_involution(self, data):
        b = ByteSwap()
        assert b.apply(b.apply(data)) == data


class TestRunningChecksum:
    def test_passes_data_through(self):
        t = RunningChecksum()
        data = [5, 6, 7]
        assert t.apply(data) == data

    def test_checksum_depends_on_data(self):
        a = RunningChecksum()
        a.apply([1, 2, 3])
        b = RunningChecksum()
        b.apply([1, 2, 4])
        assert a.last_checksum != b.last_checksum

    @given(words)
    @settings(max_examples=50)
    def test_checksum_order_sensitive_but_bounded(self, data):
        t = RunningChecksum()
        t.apply(data)
        assert 0 <= t.last_checksum <= 0xFFFFFFFF


class TestCosting:
    def test_body_cycles_scale_with_cost(self):
        assert Identity().body_cycles(100, 2) == 102
        assert XorCipher(0).body_cycles(100, 2) == 202

    def test_quantum_cycles_include_control(self):
        q = ByteSwap().quantum_cycles(64, 1)
        assert q == DEFAULT_TIMING.control_total + 65
