"""Addresses and prefixes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.addr import Prefix, int_to_ip, ip_to_int, random_prefixes


class TestAddressParsing:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("10.0.0.1") == (10 << 24) | 1
        assert ip_to_int("192.168.1.5") == 0xC0A80105

    def test_format(self):
        assert int_to_ip(0xC0A80105) == "192.168.1.5"
        assert int_to_ip(0) == "0.0.0.0"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "-1.0.0.0"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_format_range_check(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefix:
    def test_canonicalizes_host_bits(self):
        p = Prefix(ip_to_int("10.1.2.3"), 8)
        assert p.address == ip_to_int("10.0.0.0")

    def test_mask(self):
        assert Prefix(0, 0).mask == 0
        assert Prefix(0, 32).mask == 0xFFFFFFFF
        assert Prefix(0, 24).mask == 0xFFFFFF00

    def test_matches(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.matches(ip_to_int("10.200.3.4"))
        assert not p.matches(ip_to_int("11.0.0.0"))

    def test_parse_with_and_without_length(self):
        assert Prefix.parse("10.0.0.0/8").length == 8
        assert Prefix.parse("10.0.0.1").length == 32

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_random_member_within_prefix(self):
        rng = np.random.default_rng(0)
        p = Prefix.parse("172.16.0.0/12")
        for _ in range(100):
            assert p.matches(p.random_member(rng))

    def test_random_member_of_host_route(self):
        rng = np.random.default_rng(0)
        p = Prefix.parse("1.2.3.4/32")
        assert p.random_member(rng) == p.address


class TestRandomPrefixes:
    def test_distinct_and_counted(self):
        rng = np.random.default_rng(1)
        prefixes = random_prefixes(500, rng)
        assert len(prefixes) == 500
        assert len({(p.address, p.length) for p in prefixes}) == 500

    def test_length_bounds(self):
        rng = np.random.default_rng(1)
        for p in random_prefixes(200, rng, min_len=12, max_len=20):
            assert 12 <= p.length <= 20

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            random_prefixes(1, np.random.default_rng(0), min_len=20, max_len=10)

    def test_skew_toward_long_prefixes(self):
        rng = np.random.default_rng(2)
        lengths = [p.length for p in random_prefixes(2000, rng, 8, 24)]
        # BGP-like: the long half should dominate.
        assert sum(l > 16 for l in lengths) > sum(l <= 16 for l in lengths)
