"""The phase-level router: pipelines, conservation, drops, extensions."""

import numpy as np
import pytest

from repro.core.compute import XorCipher
from repro.core.token import WeightedToken
from repro.ip.lookup import RoutingTable
from repro.router import RawRouter
from repro.traffic import (
    FixedPermutation,
    FixedSize,
    HotspotDestinations,
    PacketFactory,
    Saturated,
    UniformDestinations,
    Workload,
)


def saturated_router(pattern=None, size=1024, seed=0, **kw):
    rng = np.random.default_rng(seed)
    router = RawRouter(**kw)
    workload = Workload(
        pattern or FixedPermutation.shift(4, 2), FixedSize(size), Saturated()
    )
    router.attach_saturated(workload, PacketFactory(4, rng))
    return router


class TestPeakThroughput:
    def test_matches_paper_1024(self):
        router = saturated_router(size=1024, warmup_cycles=20_000)
        res = router.run(max_cycles=250_000)
        assert res.gbps == pytest.approx(26.9, rel=0.03)
        assert res.mpps == pytest.approx(3.3, rel=0.03)

    def test_matches_paper_64(self):
        router = saturated_router(size=64, warmup_cycles=20_000)
        res = router.run(max_cycles=150_000)
        assert res.gbps == pytest.approx(7.3, rel=0.12)

    def test_agrees_with_fabric_simulator(self):
        """The full pipeline's bottleneck is the fabric: both engines
        report the same saturated rate."""
        from repro.core.fabricsim import FabricSimulator, saturated_permutation

        router = saturated_router(size=512, warmup_cycles=20_000)
        full = router.run(max_cycles=250_000).gbps
        fabric = FabricSimulator().run(
            saturated_permutation(128, 2), quanta=1500, warmup_quanta=100
        ).gbps
        assert full == pytest.approx(fabric, rel=0.02)


class TestConservationAndCorrectness:
    def test_packets_counted_per_port(self):
        router = saturated_router(size=256, warmup_cycles=0)
        res = router.run(max_cycles=100_000)
        assert sum(router.stats.per_port_delivered) == res.packets
        assert res.packets > 100

    def test_delivered_to_lpm_port(self):
        """Every delivered packet left on the port the routing table
        says -- the traffic intent survives lookup and switching."""
        rng = np.random.default_rng(1)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True),
            FixedSize(256),
            Saturated(),
        )
        factory = PacketFactory(4, rng)
        delivered = []
        real_make = factory.make

        def tracking(inp, outp, size):
            pkt = real_make(inp, outp, size)
            delivered.append(pkt)
            return pkt

        factory.make = tracking
        router.attach_saturated(workload, factory)
        router.run(max_cycles=60_000)
        table = router.table
        done = [p for p in delivered if p.departure_cycle >= 0]
        assert len(done) > 50
        for pkt in done:
            assert table.lookup(pkt.dst) == pkt.output_port
            assert pkt.ttl == 63  # decremented exactly once

    def test_latency_positive_and_ordered(self):
        router = saturated_router(size=256, warmup_cycles=5_000)
        router.run(max_cycles=100_000)
        summary = router.stats.latency.summary()
        assert summary["mean_cycles"] > 256  # at least a store+forward
        assert summary["p99_cycles"] >= summary["p50_cycles"]


class TestFragmentationPath:
    def test_jumbo_packets_reassembled(self):
        """2,048-byte packets exceed the 256-word transfer block: two
        crossbar quanta per packet, reassembled at egress."""
        router = saturated_router(size=2048, warmup_cycles=10_000)
        res = router.run(max_cycles=200_000)
        assert res.packets > 50
        # Throughput stays near the 1,024B rate (overhead per quantum).
        assert res.gbps == pytest.approx(26.9, rel=0.06)
        # 2 fragments per packet, up to 4 grants per quantum.
        assert router.stats.quanta * 4 >= 2 * res.packets


class TestDropPaths:
    def test_ttl_expired_dropped(self):
        rng = np.random.default_rng(2)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(FixedPermutation.shift(4, 1), FixedSize(64), Saturated())
        factory = PacketFactory(4, rng)
        real_make = factory.make
        factory.make = lambda i, o, s: (
            lambda p: (setattr(p, "ttl", 1), p.fill_checksum(), p)[-1]
        )(real_make(i, o, s))
        router.attach_saturated(workload, factory)
        res = router.run(max_cycles=30_000)
        assert res.packets == 0
        assert router.stats.ttl_drops > 0

    def test_bad_checksum_dropped(self):
        rng = np.random.default_rng(2)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(FixedPermutation.shift(4, 1), FixedSize(64), Saturated())
        factory = PacketFactory(4, rng)
        real_make = factory.make

        def corrupt(i, o, s):
            p = real_make(i, o, s)
            p.checksum ^= 0xAAAA
            return p

        factory.make = corrupt
        router.attach_saturated(workload, factory)
        res = router.run(max_cycles=30_000)
        assert res.packets == 0
        assert router.stats.checksum_drops > 0


class TestLineCards:
    def test_light_load_lossless(self):
        rng = np.random.default_rng(3)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True),
            FixedSize(256),
            Saturated(),
        )
        sources = router.attach_linecards(
            workload, PacketFactory(4, rng), offered_load=0.3, rng=rng,
            packets_per_port=100,
        )
        res = router.run(target_packets=390)
        assert res.packets >= 390
        assert sum(s.dropped for s in sources) == 0

    def test_overload_drops_at_linecard(self):
        rng = np.random.default_rng(4)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(
            HotspotDestinations(4, rng, hot=0, p_hot=1.0),
            FixedSize(1024),
            Saturated(),
        )
        sources = router.attach_linecards(
            workload, PacketFactory(4, rng), offered_load=0.9, rng=rng,
            packets_per_port=150, line_buffer_packets=4,
        )
        router.run(max_cycles=600_000)
        assert sum(s.dropped for s in sources) > 0
        assert router.stats.line_drops == sum(s.dropped for s in sources)

    def test_double_attach_rejected(self):
        router = saturated_router()
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            router.attach_saturated(
                Workload(FixedPermutation.shift(4, 1), FixedSize(64), Saturated()),
                PacketFactory(4, rng),
            )

    def test_run_needs_attachment(self):
        router = RawRouter()
        with pytest.raises(RuntimeError):
            router.run(max_cycles=10)

    def test_run_needs_stop_condition(self):
        router = saturated_router()
        with pytest.raises(ValueError):
            router.run()


class TestExtensions:
    def test_qos_weighted_token_in_router(self):
        rng = np.random.default_rng(5)
        router = RawRouter(
            token=WeightedToken([4, 1, 1, 1]), warmup_cycles=10_000
        )
        workload = Workload(
            HotspotDestinations(4, rng, hot=0, p_hot=1.0),
            FixedSize(256),
            Saturated(),
        )
        router.attach_saturated(workload, PacketFactory(4, rng))
        router.run(max_cycles=400_000)
        share = router.stats.input_share()
        assert share[0] == pytest.approx(4 / 7, rel=0.10)
        # Everything left on the hotspot output.
        assert router.stats.port_share()[0] == pytest.approx(1.0)

    def test_transform_slows_body_streaming(self):
        from repro.core.phases import quantum_cycles

        plain = saturated_router(size=1024, warmup_cycles=10_000)
        base = plain.run(max_cycles=150_000).gbps
        enc = saturated_router(
            size=1024, warmup_cycles=10_000, transform=XorCipher(3)
        )
        cipher_rate = enc.run(max_cycles=150_000).gbps
        # Body stretches to words x 2; control overhead is unchanged.
        expected = base * quantum_cycles(256, 2) / quantum_cycles(512, 2)
        assert cipher_rate == pytest.approx(expected, rel=0.03)

    def test_second_network_config_runs(self):
        router = saturated_router(size=256, networks=2, warmup_cycles=5_000)
        res = router.run(max_cycles=80_000)
        assert res.gbps > 10

    def test_compiled_schedule_engine_matches_allocator(self):
        """Running the fabric off the chapter-6 jump table gives the
        same throughput as evaluating the rule directly."""
        from repro.core.ring import RingGeometry
        from repro.core.scheduler import CompileTimeScheduler

        schedule = CompileTimeScheduler(RingGeometry(4)).compile()
        direct = saturated_router(size=512, warmup_cycles=10_000)
        via_table = saturated_router(
            size=512, warmup_cycles=10_000, schedule=schedule
        )
        a = direct.run(max_cycles=120_000).gbps
        b = via_table.run(max_cycles=120_000).gbps
        assert a == pytest.approx(b, rel=0.01)

    def test_eight_port_router_neighbor_traffic_scales(self):
        """Section 8.5 scaling: neighbor permutations scale ~linearly
        (each flow holds one ring segment)."""
        rng = np.random.default_rng(6)
        router = RawRouter(num_ports=8, warmup_cycles=10_000)
        workload = Workload(
            FixedPermutation.shift(8, 1), FixedSize(1024), Saturated()
        )
        router.attach_saturated(workload, PacketFactory(8, rng))
        res = router.run(max_cycles=200_000)
        assert res.gbps > 45  # ~2x the 4-port fabric

    def test_eight_port_antipodal_is_bisection_limited(self):
        """The honest flip side: antipodal permutations saturate the
        ring's bisection, so aggregate rate stays near the 4-port level
        -- the scaling caveat the thesis defers to future work."""
        rng = np.random.default_rng(6)
        router = RawRouter(num_ports=8, warmup_cycles=10_000)
        workload = Workload(
            FixedPermutation.shift(8, 4), FixedSize(1024), Saturated()
        )
        router.attach_saturated(workload, PacketFactory(8, rng))
        res = router.run(max_cycles=200_000)
        assert res.gbps < 35
