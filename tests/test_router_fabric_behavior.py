"""Fabric-stage behaviours: parking, wake, output blocking, QoS plumbing."""

import numpy as np
import pytest

from repro.core.token import WeightedToken
from repro.router.router import RawRouter
from repro.traffic import (
    FixedPermutation,
    FixedSize,
    HotspotDestinations,
    PacketFactory,
    Saturated,
    Workload,
)


class TestIdleParking:
    def test_finite_sources_drain_and_stop(self):
        """With finite line-card sources the simulation quiesces: the
        fabric parks instead of spinning idle quanta forever."""
        rng = np.random.default_rng(0)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(
            FixedPermutation.shift(4, 1), FixedSize(256), Saturated()
        )
        sources = router.attach_linecards(
            workload, PacketFactory(4, rng), offered_load=0.5, rng=rng,
            packets_per_port=25,
        )
        res = router.run(target_packets=100)
        end = router.sim.now
        # Re-running adds nothing: no runaway idle events.
        router.sim.run(until=end + 500_000, raise_on_deadlock=False)
        assert router.sim.now == end
        assert res.packets == 100

    def test_wake_resumes_after_idle_gap(self):
        """A long silent gap then one packet: the parked fabric must wake
        and deliver it."""
        rng = np.random.default_rng(1)
        router = RawRouter(warmup_cycles=0)

        calls = {"n": 0}

        class OnePacketLate:
            n = 4

            def next_dest(self, port):
                return (port + 1) % 4

        workload = Workload(OnePacketLate(), FixedSize(64), Saturated())
        sources = router.attach_linecards(
            workload, PacketFactory(4, rng), offered_load=0.01, rng=rng,
            packets_per_port=3,
        )
        res = router.run(target_packets=12, chunk=50_000)
        assert res.packets == 12


class TestOutputBlocking:
    def test_slow_egress_backpressures_fabric(self):
        """A tiny egress queue with an all-to-one hotspot: the fabric
        must block on Put rather than drop, and everything still
        arrives exactly once."""
        rng = np.random.default_rng(2)
        router = RawRouter(warmup_cycles=0, egress_queue_frags=1)
        workload = Workload(
            HotspotDestinations(4, rng, hot=2, p_hot=1.0),
            FixedSize(1024),
            Saturated(),
        )
        router.attach_saturated(workload, PacketFactory(4, rng))
        res = router.run(max_cycles=150_000)
        assert res.packets > 50
        assert router.stats.per_port_delivered[2] == res.packets
        assert sum(router.stats.per_port_delivered) == res.packets


class TestWeightedTokenPlumbing:
    def test_fabric_uses_supplied_token(self):
        rng = np.random.default_rng(3)
        token = WeightedToken([7, 1, 1, 1])
        router = RawRouter(token=token, warmup_cycles=0)
        workload = Workload(
            HotspotDestinations(4, rng, hot=0, p_hot=1.0),
            FixedSize(128),
            Saturated(),
        )
        router.attach_saturated(workload, PacketFactory(4, rng))
        router.run(max_cycles=120_000)
        shares = router.stats.input_share()
        assert shares[0] == pytest.approx(0.7, abs=0.05)
        assert token.rotations > 0


class TestGrantAccounting:
    def test_histogram_and_blocked_counters(self):
        rng = np.random.default_rng(4)
        router = RawRouter(warmup_cycles=0)
        workload = Workload(
            HotspotDestinations(4, rng, hot=0, p_hot=1.0),
            FixedSize(64),
            Saturated(),
        )
        router.attach_saturated(workload, PacketFactory(4, rng))
        router.run(max_cycles=60_000)
        stats = router.stats
        # Hotspot: exactly one grant per busy quantum, three blocked.
        busy_quanta = sum(stats.grant_histogram[1:])
        assert stats.grant_histogram[1] == busy_quanta
        assert stats.blocked_grants == pytest.approx(3 * busy_quanta, abs=8)