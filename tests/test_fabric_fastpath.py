"""Fabric fast path: allocation cache, compiled tables, steady-state
fast-forward, snapshot/restore, and time-sliced sharding.

The contract under test everywhere: every fast-path layer is
*bit-identical* to the plain step loop -- same Allocation objects, same
FabricStats fields, same clock and token state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core.allocator import Allocator, CompiledAllocator
from repro.core.fabricsim import (
    CounterUniformSource,
    FabricSimulator,
    FabricStats,
    saturated_permutation,
    saturated_uniform,
    saturated_uniform_counter,
)
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken
from repro.engines import WorkloadSpec, run_config
from repro.faults import FaultEvent, FaultPlan
from repro.parallel import ShardSpec, merge_stats, run_serial, run_sharded
from repro.telemetry import runtime


@st.composite
def alloc_cases(draw):
    """(n, networks, requests, token) over ring sizes 4/8/16."""
    n = draw(st.sampled_from((4, 8, 16)))
    networks = draw(st.sampled_from((1, 2)))
    requests = tuple(
        draw(st.one_of(st.none(), st.integers(0, n - 1))) for _ in range(n)
    )
    token = draw(st.integers(0, n - 1))
    return n, networks, requests, token


def assert_stats_identical(a: FabricStats, b: FabricStats) -> None:
    """Field-for-field equality of every accumulated statistic."""
    for f in FabricStats._COUNTER_FIELDS:
        assert getattr(a, f) == getattr(b, f), f
    for f in FabricStats._VECTOR_FIELDS:
        assert list(getattr(a, f)) == list(getattr(b, f)), f
    assert a.gbps == b.gbps
    assert a.mpps == b.mpps


class TestAllocationCache:
    @given(alloc_cases())
    @settings(max_examples=200, deadline=None)
    def test_cached_allocator_bit_identical(self, case):
        n, networks, requests, token = case
        ring = RingGeometry(n)
        plain = Allocator(ring, networks=networks)
        fast = Allocator(ring, networks=networks, cache_size=64)
        ref = plain.allocate(requests, token)
        miss = fast.allocate(requests, token)
        hit = fast.allocate(requests, token)
        assert miss == ref
        assert hit == ref
        assert hit is miss  # the cached object is shared
        assert fast.cache_hits == 1 and fast.cache_misses == 1

    @given(alloc_cases())
    @settings(max_examples=200, deadline=None)
    def test_compiled_grants_match_allocation(self, case):
        n, networks, requests, token = case
        ring = RingGeometry(n)
        comp = CompiledAllocator(ring, networks)
        alloc = Allocator(ring, networks=networks).allocate(requests, token)
        expected = tuple(
            (g.src, g.dst, g.expansion) for g in alloc.grants.values()
        )
        assert comp.grants(requests, token) == expected

    def test_lru_eviction_bound(self):
        ring = RingGeometry(4)
        alloc = Allocator(ring, cache_size=4)
        for token in range(4):
            for dst in range(4):
                alloc.allocate((dst, None, None, None), token)
        info = alloc.cache_info()
        assert info["size"] <= 4
        assert info["maxsize"] == 4
        assert info["misses"] == 16

    def test_hit_rate_on_recurring_workload(self):
        sim = FabricSimulator(allocator=Allocator(RingGeometry(4), cache_size=64))
        sim.run(saturated_permutation(64, shift=1), quanta=100)
        info = sim.allocator.cache_info()
        # One distinct (requests, token) key per token position.
        assert info["hits"] + info["misses"] == 100
        assert info["hit_rate"] > 0.9

    def test_enable_disable(self):
        alloc = Allocator(RingGeometry(4))
        assert not alloc.cache_enabled
        alloc.enable_cache(16)
        assert alloc.cache_enabled
        alloc.disable_cache()
        assert not alloc.cache_enabled
        with pytest.raises(ValueError):
            alloc.enable_cache(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(alloc_cache=-1)


class TestFastForward:
    @pytest.mark.parametrize(
        "n,shift,words",
        [(4, 2, 256), (8, 3, 64), (16, 8, 256), (8, 1, 600)],
    )
    def test_bit_identical_to_stepping(self, n, shift, words):
        """words=600 > max_quantum_words exercises fragmented packets."""
        source = saturated_permutation(words, shift=shift, n=n)
        ring = RingGeometry(n)
        stepped_sim = FabricSimulator(ring=ring, token=RotatingToken(n))
        stepped = stepped_sim.run(source, quanta=700, warmup_quanta=60)
        ff_sim = FabricSimulator(
            ring=ring, token=RotatingToken(n), fast_forward=True
        )
        ff = ff_sim.run(source, quanta=700, warmup_quanta=60)
        assert ff_sim.ff_quanta > 0
        assert_stats_identical(stepped, ff)
        assert ff_sim.clock == stepped_sim.clock
        assert ff_sim.token.rotations == stepped_sim.token.rotations
        assert ff_sim.token.master == stepped_sim.token.master

    def test_disabled_for_stochastic_source(self):
        sim = FabricSimulator(fast_forward=True)
        sim.run(saturated_uniform_counter(64, seed=7), quanta=200)
        assert sim.ff_quanta == 0

    def test_disabled_under_keep_history(self):
        sim = FabricSimulator(keep_history=True, fast_forward=True)
        sim.run(saturated_permutation(64, shift=1), quanta=120)
        assert sim.ff_quanta == 0
        assert len(sim.history) == 120

    def test_disabled_under_telemetry(self):
        with runtime.capture():
            sim = FabricSimulator(fast_forward=True)
            sim.run(saturated_permutation(64, shift=1), quanta=120)
        assert sim.ff_quanta == 0

    def test_disabled_under_min_packets_stopping(self):
        sim = FabricSimulator(fast_forward=True)
        stats = sim.run(saturated_permutation(64, shift=1), min_packets=50)
        assert sim.ff_quanta == 0
        assert stats.delivered_packets >= 50

    def test_disabled_under_faults_and_still_bit_identical(self):
        plan = FaultPlan(
            events=(FaultEvent(cycle=2_000, kind="token_loss"),)
        )
        source = saturated_permutation(64, shift=1)
        ref_sim = FabricSimulator()
        ref_sim.install_faults(plan)
        ref = ref_sim.run(source, quanta=300)
        ff_sim = FabricSimulator(fast_forward=True)
        ff_sim.install_faults(plan)
        got = ff_sim.run(source, quanta=300)
        assert ff_sim.ff_quanta == 0
        assert_stats_identical(ref, got)


class TestSnapshotRestore:
    def test_continuation_is_bit_identical(self):
        source = saturated_permutation(128, shift=2, n=8)
        whole_sim = FabricSimulator(ring=RingGeometry(8), token=RotatingToken(8))
        whole = whole_sim.run(source, quanta=300, warmup_quanta=100)

        first = FabricSimulator(ring=RingGeometry(8), token=RotatingToken(8))
        first.run(source, quanta=100, warmup_quanta=0)  # the warmup region
        snap = first.snapshot()
        resumed = FabricSimulator(ring=RingGeometry(8), token=RotatingToken(8))
        resumed.restore(snap)
        cont = resumed.run(source, quanta=300, warmup_quanta=0)
        assert_stats_identical(whole, cont)
        assert resumed.clock == whole_sim.clock

    def test_snapshot_refuses_armed_faults(self):
        sim = FabricSimulator()
        sim.install_faults(
            FaultPlan(events=(FaultEvent(cycle=10, kind="token_loss"),))
        )
        with pytest.raises(ValueError):
            sim.snapshot()

    def test_snapshot_allowed_once_fault_plan_quiescent(self):
        # A stall window early in the run: snapshot must refuse while the
        # window is pending/open, then succeed once every event has fired
        # and expired -- and the continuation must stay bit-identical.
        plan = FaultPlan(
            events=(
                FaultEvent(
                    cycle=500, kind="stall", target="port:1", duration=2_000
                ),
            )
        )
        source = saturated_permutation(64, shift=1)
        whole_sim = FabricSimulator()
        whole_sim.install_faults(plan)
        whole = whole_sim.run(source, quanta=400, warmup_quanta=100)

        first = FabricSimulator()
        first.install_faults(plan)
        first.run(source, quanta=100, warmup_quanta=0)
        snap = first.snapshot()  # clock is far past the window by now
        assert first.faults.quiescent()
        resumed = FabricSimulator().restore(snap)
        cont = resumed.run(source, quanta=400, warmup_quanta=0)
        assert_stats_identical(whole, cont)

    def test_snapshot_still_refuses_mid_window(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    cycle=0, kind="stall", target="port:0", duration=10**9
                ),
            )
        )
        sim = FabricSimulator()
        sim.install_faults(plan)
        sim.run(saturated_permutation(64, shift=1), quanta=5, warmup_quanta=0)
        with pytest.raises(ValueError, match="pending"):
            sim.snapshot()

    def test_snapshot_refuses_dead_port_forever(self):
        # port_down permanently remaps routing; that is never quiescent.
        plan = FaultPlan(
            events=(FaultEvent(cycle=0, kind="port_down", target="port:2"),)
        )
        sim = FabricSimulator()
        sim.install_faults(plan)
        sim.run(saturated_permutation(64, shift=1), quanta=50, warmup_quanta=0)
        with pytest.raises(ValueError):
            sim.snapshot()

    def test_restore_rejects_wrong_port_count(self):
        snap = FabricSimulator(ring=RingGeometry(8)).snapshot()
        with pytest.raises(ValueError):
            FabricSimulator(ring=RingGeometry(4)).restore(snap)

    def test_counter_source_state_roundtrip(self):
        src = CounterUniformSource(64, seed=11, n=4)
        draws = [src(p) for p in (0, 1, 2, 0, 3)]
        state = src.state()
        more = [src(p) for p in (0, 1, 2)]
        replay = CounterUniformSource(64, seed=11, n=4).restore(state)
        assert [replay(p) for p in (0, 1, 2)] == more
        assert draws[0] != (0, 64)  # exclude_self held


class TestSharding:
    def test_permutation_sharded_equals_serial(self):
        spec = ShardSpec(
            ports=8,
            source=ShardSpec.pack_source(
                {"kind": "permutation", "words": 256, "shift": 3}
            ),
            quanta=400, warmup_quanta=50, shards=4,
        )
        serial = run_serial(spec)
        merged, info = run_sharded(spec)
        assert_stats_identical(serial, merged)
        assert info.slice_lengths == [100, 100, 100, 100]

    def test_stochastic_sharded_equals_serial_with_odd_slicing(self):
        spec = ShardSpec(
            ports=16,
            source=ShardSpec.pack_source(
                {"kind": "uniform_counter", "words": 256, "seed": 42,
                 "exclude_self": True}
            ),
            quanta=331, warmup_quanta=17, shards=5,
        )
        serial = run_serial(spec)
        merged, info = run_sharded(spec)
        assert_stats_identical(serial, merged)
        assert sum(info.slice_lengths) == 331

    def test_merge_is_associative(self):
        spec = ShardSpec(
            ports=4,
            source=ShardSpec.pack_source(
                {"kind": "uniform_counter", "words": 64, "seed": 3,
                 "exclude_self": True}
            ),
            quanta=120, warmup_quanta=0, shards=3,
        )
        merged, _ = run_sharded(spec)
        # Re-run the slices serially to get the parts, then regroup.
        from repro.parallel.fabric_shard import (
            _pilot_checkpoints, _run_slice, build_sim, make_source,
        )

        checkpoints = _pilot_checkpoints(
            build_sim(spec), make_source(spec), [0, 40, 80]
        )
        parts = [
            _run_slice((spec, *checkpoints[b], 40)) for b in (0, 40, 80)
        ]
        left = merge_stats([merge_stats(parts[:2]), parts[2]])
        right = merge_stats([parts[0], merge_stats(parts[1:])])
        flat = merge_stats(parts)
        assert left.counters() == right.counters() == flat.counters()
        assert flat.counters() == merged.counters()

    def test_telemetry_merges_worker_states(self):
        # Sharded runs under telemetry record per-slice and fold the
        # states back in; stats stay bit-identical to the serial run.
        spec = ShardSpec(quanta=40, warmup_quanta=0, shards=2)
        ref = run_serial(spec)
        with runtime.capture() as tel:
            merged, info = run_sharded(spec, workers=1)
        assert merged.counters() == ref.counters()
        assert tel.journeys.completed > 0
        assert sorted(tel.workers) == [0, 1]
        assert all(m["slice"] == w for w, m in tel.workers.items())

    def test_unknown_source_kind(self):
        spec = ShardSpec(source=ShardSpec.pack_source({"kind": "nope"}))
        with pytest.raises(ValueError):
            run_serial(spec)


class TestSourceGuards:
    def test_saturated_uniform_rejects_self_only_ring(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            saturated_uniform(64, rng, n=1, exclude_self=True)

    def test_counter_uniform_rejects_self_only_ring(self):
        with pytest.raises(ValueError):
            CounterUniformSource(64, seed=0, n=1, exclude_self=True)

    def test_n1_allowed_without_exclusion(self):
        rng = np.random.default_rng(0)
        source = saturated_uniform(64, rng, n=1, exclude_self=False)
        assert source(0) == (0, 64)


class TestGaugeRegistration:
    def test_rerun_does_not_reregister(self):
        """Regression: run() used to re-register fabric.clock and the
        ingress queue-depth gauges on every invocation."""
        with runtime.capture() as tel:
            sim = FabricSimulator(
                allocator=Allocator(RingGeometry(4), cache_size=16)
            )
            source = saturated_permutation(64, shift=1)
            sim.run(source, quanta=20)
            registered = []
            orig = tel.registry.gauge

            def spy(name, fn):
                registered.append(name)
                orig(name, fn)

            tel.registry.gauge = spy
            try:
                sim.run(source, quanta=20)
            finally:
                tel.registry.gauge = orig
            assert registered == []
            assert tel.registry.read_gauge("fabric.clock") == sim.clock
            assert tel.registry.read_gauge("fabric.alloc_cache.hits") == (
                sim.allocator.cache_hits
            )

    def test_new_registry_gets_fresh_gauges(self):
        sim = FabricSimulator(fast_forward=True)
        source = saturated_permutation(64, shift=1)
        with runtime.capture() as tel1:
            sim.run(source, quanta=10)
            assert tel1.registry.read_gauge("fabric.clock") == sim.clock
        with runtime.capture() as tel2:
            sim.run(source, quanta=10)
            assert tel2.registry.read_gauge("fabric.clock") == sim.clock
            assert tel2.registry.read_gauge("fabric.fast_forward.quanta") == 0


class TestWiring:
    def test_engine_reports_fast_path_and_stays_bit_identical(self):
        workload = WorkloadSpec(pattern="permutation", quanta=250)
        plain = run_config(SimConfig(fidelity="fabric"), workload)
        fast = run_config(
            SimConfig(fidelity="fabric", alloc_cache=1024, fast_forward=True),
            workload,
        )
        assert "fabric_fast_path" not in plain.extra
        fp = fast.extra["fabric_fast_path"]
        assert fp["ff_quanta"] > 0
        assert 0.0 <= fp["cache_hit_rate"] <= 1.0
        assert fast.cycles == plain.cycles
        assert fast.delivered_packets == plain.delivered_packets
        assert fast.gbps == plain.gbps
        assert fast.per_port_packets == plain.per_port_packets

    def test_telemetry_summary_carries_fast_path(self):
        with runtime.capture() as tel:
            sim = FabricSimulator(
                allocator=Allocator(RingGeometry(4), cache_size=64)
            )
            sim.run(saturated_permutation(64, shift=1), quanta=50)
            summary = tel.summary()
        fp = summary["fabric_fast_path"]
        assert fp["cache_hits"] == sim.allocator.cache_hits
        assert fp["cache_misses"] == sim.allocator.cache_misses
        assert fp["ff_quanta"] == 0  # telemetry forces the step loop

    def test_sweep_summary_line_shows_fast_path(self):
        from repro.sweep import summarize

        table = {
            "sweep": {"cells": 1, "workers": 1, "worker_pids": [1]},
            "rows": [{
                "cell": {"ports": 4},
                "result": {
                    "gbps": 1.0, "mpps": 0.5, "delivered_packets": 10,
                    "cycles": 100,
                    "extra": {"fabric_fast_path": {
                        "cache_hits": 9, "cache_misses": 1,
                        "cache_hit_rate": 0.9, "ff_quanta": 40,
                    }},
                },
            }],
        }
        text = summarize(table)
        assert "cache 90% hit" in text
        assert "ff 40q" in text
