"""End-to-end integration: the whole stack against realistic scenarios.

These tests cross every module boundary at once: traffic generation ->
packet minting -> line cards -> ingress (checksum/TTL/lookup over a real
prefix table) -> fragmentation -> Rotating Crossbar -> reassembly ->
egress metering, on both router engines where feasible.
"""

import numpy as np
import pytest

from repro.ip.addr import Prefix, random_prefixes
from repro.ip.lookup import RoutingTable
from repro.ip.packet import IPv4Packet
from repro.router import RawRouter
from repro.traffic import (
    BurstyDestinations,
    FixedSize,
    IMix,
    PacketFactory,
    Saturated,
    UniformDestinations,
    Workload,
)


class TestRealPrefixTable:
    def test_specific_routes_override_split(self):
        """Customer prefixes land on their configured ports, everything
        else follows the covering split -- through the full router."""
        table = RoutingTable.uniform_split(4)
        customer = Prefix.parse("10.20.0.0/16")
        table.add_route(customer, 3)  # 10/8 block is in port 0's quarter
        rng = np.random.default_rng(0)
        router = RawRouter(table=table, warmup_cycles=0)

        factory = PacketFactory(4, rng)
        minted = []
        real_make = factory.make

        def make(inp, outp, size):
            pkt = real_make(inp, outp, size)
            if len(minted) % 3 == 0:  # every third packet hits the customer
                pkt.dst = customer.random_member(rng)
                pkt.fill_checksum()
            minted.append(pkt)
            return pkt

        factory.make = make
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True), FixedSize(256), Saturated()
        )
        router.attach_saturated(workload, factory)
        router.run(max_cycles=60_000)
        done = [p for p in minted if p.departure_cycle >= 0]
        customer_pkts = [p for p in done if customer.matches(p.dst)]
        other_pkts = [p for p in done if not customer.matches(p.dst)]
        assert len(customer_pkts) > 20 and len(other_pkts) > 20
        assert all(p.output_port == 3 for p in customer_pkts)
        for p in other_pkts:
            assert p.output_port == p.dst >> 30  # the split rule

    def test_large_random_table(self):
        """5,000 random prefixes; every delivered packet matches an
        oracle LPM over the same table."""
        rng = np.random.default_rng(1)
        prefixes = random_prefixes(5000, rng)
        routes = [(p, i % 4) for i, p in enumerate(prefixes)]
        table = RoutingTable.from_routes(routes, default_port=0)
        router = RawRouter(table=table, warmup_cycles=0)
        factory = PacketFactory(4, rng)
        minted = []
        real_make = factory.make

        def make(inp, outp, size):
            pkt = real_make(inp, outp, size)
            if rng.random() < 0.5:
                p, _ = routes[int(rng.integers(0, len(routes)))]
                pkt.dst = p.random_member(rng)
                pkt.fill_checksum()
            minted.append(pkt)
            return pkt

        factory.make = make
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True), FixedSize(128), Saturated()
        )
        router.attach_saturated(workload, factory)
        router.run(max_cycles=40_000)
        done = [p for p in minted if p.departure_cycle >= 0]
        assert len(done) > 100
        for pkt in done:
            assert pkt.output_port == table.lookup(pkt.dst)


class TestMixedTraffic:
    def test_imix_bursty_run(self):
        """IMIX sizes + bursty destinations: the messy-traffic smoke
        test; conservation and monotone timestamps must survive."""
        rng = np.random.default_rng(2)
        router = RawRouter(warmup_cycles=5_000)
        workload = Workload(
            BurstyDestinations(4, rng, mean_burst=6.0), IMix(rng), Saturated()
        )
        router.attach_saturated(workload, PacketFactory(4, rng))
        res = router.run(max_cycles=150_000)
        assert res.packets > 200
        assert sum(router.stats.per_port_delivered) == res.packets
        assert 5.0 < res.gbps < 27.0
        lat = router.stats.latency.summary()
        assert lat["p99_cycles"] >= lat["p50_cycles"] > 0

    def test_jumbo_reassembly_content(self):
        """4,096-byte packets cross in 4 quanta; the *content* must
        survive fragmentation interleaved across four inputs."""
        rng = np.random.default_rng(3)
        router = RawRouter(warmup_cycles=0)
        factory = PacketFactory(4, rng)
        minted = []
        real_make = factory.make

        def make(inp, outp, size):
            pkt = real_make(inp, outp, size)
            minted.append((pkt, tuple(pkt.payload)))
            return pkt

        factory.make = make
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True),
            FixedSize(4096),
            Saturated(),
        )
        router.attach_saturated(workload, factory)
        router.run(max_cycles=120_000)
        done = [(p, pay) for p, pay in minted if p.departure_cycle >= 0]
        assert len(done) > 40
        for pkt, payload in done:
            assert tuple(pkt.payload) == payload  # untouched by transit
            assert pkt.checksum_ok()
            assert pkt.ttl == 63


class TestEnginesAgree:
    @pytest.mark.parametrize("size", [64, 1024])
    def test_wordlevel_vs_phase_peak(self, size):
        """Both fidelities within a 25% band at the Fig 7-1 endpoints
        (word-level carries extra, documented, serialization)."""
        from repro.router.wordlevel import WordLevelRouter, permutation_source
        from repro.traffic import FixedPermutation

        rng = np.random.default_rng(4)
        phase = RawRouter(warmup_cycles=10_000)
        workload = Workload(
            FixedPermutation.shift(4, 2), FixedSize(size), Saturated()
        )
        phase.attach_saturated(workload, PacketFactory(4, rng))
        phase_gbps = phase.run(max_cycles=100_000).gbps
        word = WordLevelRouter(permutation_source(size))
        word_gbps = word.run(until_cycles=30_000, warmup_cycles=8_000).gbps
        assert word_gbps == pytest.approx(phase_gbps, rel=0.25)
