"""Quantum-level fabric simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fabricsim import (
    FabricSimulator,
    saturated_hotspot,
    saturated_permutation,
    saturated_uniform,
)
from repro.core.phases import quantum_cycles
from repro.core.ring import RingGeometry
from repro.raw import costs


class TestPeak:
    def test_matches_closed_form(self):
        """Saturated permutation traffic: every quantum moves 4 x W words
        in quantum_cycles(W, expansion) cycles."""
        words = 256
        sim = FabricSimulator()
        stats = sim.run(saturated_permutation(words, shift=2), quanta=500, warmup_quanta=50)
        expected_wpc = 4 * words / quantum_cycles(words, 2)
        assert stats.words_per_cycle == pytest.approx(expected_wpc, rel=0.01)

    def test_peak_gbps_matches_paper_headline(self):
        sim = FabricSimulator()
        stats = sim.run(saturated_permutation(256, shift=2), quanta=1000, warmup_quanta=100)
        assert stats.gbps == pytest.approx(26.9, rel=0.02)
        assert stats.mpps == pytest.approx(3.3, rel=0.03)

    def test_all_grants_every_quantum(self):
        sim = FabricSimulator()
        stats = sim.run(saturated_permutation(64, shift=1), quanta=200, warmup_quanta=10)
        assert stats.grant_histogram[4] == stats.quanta
        assert stats.blocked_events == 0


class TestAverage:
    def test_avg_to_peak_ratio_near_paper(self):
        """Uniform traffic lands at ~69% of peak (section 7.3)."""
        peak = FabricSimulator().run(
            saturated_permutation(256, shift=2), quanta=1500, warmup_quanta=100
        )
        rng = np.random.default_rng(0)
        avg = FabricSimulator().run(
            saturated_uniform(256, rng, exclude_self=True),
            quanta=4000,
            warmup_quanta=300,
        )
        ratio = avg.gbps / peak.gbps
        assert 0.63 <= ratio <= 0.75

    def test_hotspot_serializes(self):
        rng = np.random.default_rng(0)
        stats = FabricSimulator().run(
            saturated_hotspot(128, rng, hot=0, p_hot=1.0), quanta=500, warmup_quanta=50
        )
        # One grant per quantum: aggregate rate ~= single-port rate.
        assert stats.grant_histogram[1] == stats.quanta
        assert stats.words_per_cycle < 0.8


class TestFragmentation:
    def test_large_packets_fragment(self):
        sim = FabricSimulator(max_quantum_words=64)
        stats = sim.run(saturated_permutation(256, shift=1), quanta=400, warmup_quanta=40)
        # 256-word packets over 64-word quanta: 4 quanta per packet.
        assert stats.delivered_words == pytest.approx(
            stats.delivered_packets * 256, abs=3 * 256
        )
        assert stats.quanta >= stats.delivered_packets  # > 1 quantum/packet

    def test_fragmentation_costs_throughput(self):
        full = FabricSimulator(max_quantum_words=256).run(
            saturated_permutation(256, 1), quanta=400, warmup_quanta=40
        )
        frag = FabricSimulator(max_quantum_words=32).run(
            saturated_permutation(256, 1), quanta=1200, warmup_quanta=40
        )
        assert frag.gbps < full.gbps

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            FabricSimulator(max_quantum_words=0)


class TestStopping:
    def test_needs_condition(self):
        with pytest.raises(ValueError):
            FabricSimulator().run(saturated_permutation(16))

    def test_min_packets(self):
        stats = FabricSimulator().run(saturated_permutation(16), min_packets=50)
        assert stats.delivered_packets >= 50

    def test_idle_source(self):
        stats = FabricSimulator().run(lambda p: None, quanta=10)
        assert stats.idle_quanta == 10
        assert stats.delivered_packets == 0
        assert stats.gbps == 0.0

    def test_bad_packet_words(self):
        sim = FabricSimulator()
        with pytest.raises(ValueError):
            sim.run(lambda p: (0, 0), quanta=1)


class TestAccounting:
    def test_per_port_sums(self):
        rng = np.random.default_rng(1)
        sim = FabricSimulator()
        stats = sim.run(
            saturated_uniform(64, rng), quanta=500, warmup_quanta=0
        )
        assert sum(stats.per_port_words) == stats.delivered_words
        assert sum(stats.per_port_packets) == stats.delivered_packets

    def test_histogram_totals_quanta(self):
        rng = np.random.default_rng(1)
        stats = FabricSimulator().run(saturated_uniform(64, rng), quanta=300)
        assert sum(stats.grant_histogram) + stats.idle_quanta == stats.quanta


@given(
    words=st.integers(1, 300),
    shift=st.integers(1, 3),
    quanta=st.integers(10, 120),
)
@settings(max_examples=40, deadline=None)
def test_conservation_property(words, shift, quanta):
    """Property: delivered words == packets x packet size (no loss, no
    duplication) for any size/pattern/duration."""
    sim = FabricSimulator()
    stats = sim.run(saturated_permutation(words, shift), quanta=quanta)
    assert stats.delivered_words <= stats.delivered_packets * words + 4 * words
    # every completed packet moved exactly `words` words
    if stats.delivered_packets:
        # in-flight fragments may make words slightly exceed packets*words
        assert stats.delivered_words >= stats.delivered_packets * min(
            words, sim.max_quantum_words
        )
