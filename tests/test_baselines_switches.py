"""Cell-switch baselines: schedulers, HOL, VOQ, OQ, cells-vs-packets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cells import CellModeBackplane, PacketModeBackplane
from repro.baselines.cellsim import FIFOSwitch, OutputQueuedSwitch, VOQSwitch
from repro.baselines.schedulers import PIMScheduler, RandomScheduler, iSLIPScheduler
from repro.traffic.sizes import BimodalSizes


def random_requests(rng, n, density=0.5):
    return [[bool(rng.random() < density) for _ in range(n)] for _ in range(n)]


class TestSchedulerInvariants:
    @pytest.mark.parametrize("make", [
        lambda n: iSLIPScheduler(n, iterations=1),
        lambda n: iSLIPScheduler(n, iterations=4),
        lambda n: PIMScheduler(n, iterations=2, rng=np.random.default_rng(0)),
        lambda n: RandomScheduler(n, rng=np.random.default_rng(0)),
    ])
    def test_matching_is_valid(self, make):
        rng = np.random.default_rng(7)
        for n in (4, 8):
            sched = make(n)
            for _ in range(100):
                reqs = random_requests(rng, n)
                match = sched.match(reqs)
                # one-to-one and only where requested
                assert len(set(match.values())) == len(match)
                for i, j in match.items():
                    assert reqs[i][j]

    def test_islip_full_permutation_matched(self):
        """With a full request matrix, multi-iteration iSLIP finds a
        perfect matching."""
        s = iSLIPScheduler(4, iterations=4)
        full = [[True] * 4 for _ in range(4)]
        # pointers desynchronize after a couple of slots
        for _ in range(5):
            match = s.match(full)
        assert len(match) == 4

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            iSLIPScheduler(4, iterations=0)
        with pytest.raises(ValueError):
            PIMScheduler(4, iterations=0)


class TestSwitchThroughput:
    def test_fifo_hol_limited(self):
        rng = np.random.default_rng(1)
        res = FIFOSwitch(16, rng).run(slots=6000, load=1.0, warmup=600)
        assert 0.55 <= res.throughput <= 0.66

    def test_voq_islip_near_full(self):
        rng = np.random.default_rng(1)
        res = VOQSwitch(16, iSLIPScheduler(16, 4), rng).run(
            slots=6000, load=1.0, warmup=600
        )
        assert res.throughput > 0.95

    def test_output_queued_ideal(self):
        rng = np.random.default_rng(1)
        res = OutputQueuedSwitch(8, rng).run(slots=6000, load=1.0, warmup=600)
        assert res.throughput > 0.97

    def test_ordering_fifo_voq_oq(self):
        rng1, rng2, rng3 = (np.random.default_rng(s) for s in (2, 2, 2))
        fifo = FIFOSwitch(8, rng1).run(4000, 1.0, 400).throughput
        voq = VOQSwitch(8, iSLIPScheduler(8, 4), rng2).run(4000, 1.0, 400).throughput
        oq = OutputQueuedSwitch(8, rng3).run(4000, 1.0, 400).throughput
        assert fifo < voq <= oq + 0.02

    def test_light_load_all_delivered(self):
        rng = np.random.default_rng(3)
        res = VOQSwitch(4, iSLIPScheduler(4, 1), rng).run(4000, 0.2, 400)
        assert res.utilization > 0.97
        assert res.mean_delay < 5

    def test_delay_grows_with_load(self):
        delays = []
        for load in (0.3, 0.7, 0.95):
            rng = np.random.default_rng(4)
            res = VOQSwitch(8, iSLIPScheduler(8, 2), rng).run(5000, load, 500)
            delays.append(res.mean_delay)
        assert delays[0] < delays[1] < delays[2]

    def test_scheduler_port_mismatch(self):
        with pytest.raises(ValueError):
            VOQSwitch(8, iSLIPScheduler(4), np.random.default_rng(0))


class TestCellsVsPackets:
    def test_cells_beat_variable_length(self):
        rng = np.random.default_rng(5)
        sizes = BimodalSizes(rng, 64, 1024, 0.5)
        cell = CellModeBackplane(8, sizes, rng, iSLIPScheduler(8, 4))
        cell_util = cell.run(8000).utilization
        rng = np.random.default_rng(5)
        sizes = BimodalSizes(rng, 64, 1024, 0.5)
        pkt_util = PacketModeBackplane(8, sizes, rng).run(8000).utilization
        assert cell_util > 0.85
        assert pkt_util < 0.70
        assert cell_util / pkt_util > 1.3

    def test_variable_length_costs_beyond_hol(self):
        """Packet mode is HOL-bound even at fixed sizes (~0.6 for N=8);
        size *variance* drags it further down -- both effects the cell
        discipline removes."""
        from repro.traffic.sizes import FixedSize

        rng = np.random.default_rng(6)
        fixed = PacketModeBackplane(8, FixedSize(64), rng).run(6000).utilization
        rng = np.random.default_rng(6)
        mixed = PacketModeBackplane(
            8, BimodalSizes(rng, 64, 1024, 0.5), rng
        ).run(6000).utilization
        assert 0.55 <= fixed <= 0.70  # the HOL band
        assert mixed < fixed
