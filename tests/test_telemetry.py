"""Telemetry layer: event log, registry, journeys, and the two hard
guarantees -- disabled-mode bit-identity and enable/restore semantics."""

import pytest

from repro.config import SimConfig
from repro.engines import WorkloadSpec, run_config
from repro.telemetry import runtime
from repro.telemetry.events import (
    EV_PKT_ARRIVE,
    EV_PKT_DEPART,
    EV_TOKEN_PASS,
    KIND_NAMES,
    EventLog,
)
from repro.telemetry.journey import JourneyTracker
from repro.telemetry.profile import KernelProfile
from repro.telemetry.registry import LogHistogram, MetricsRegistry


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with the recorder disabled."""
    runtime.disable()
    yield
    runtime.disable()


class TestEventLog:
    def test_emit_and_read_back(self):
        log = EventLog(capacity=16)
        log.emit(5, EV_PKT_ARRIVE, "port0", 1024)
        log.emit(9, EV_PKT_DEPART, "port2", 1024)
        evs = log.events()
        assert [(e.cycle, e.kind, e.subject) for e in evs] == [
            (5, EV_PKT_ARRIVE, "port0"),
            (9, EV_PKT_DEPART, "port2"),
        ]
        assert evs[0].seq == 0 and evs[1].seq == 1
        assert log.dropped == 0

    def test_ring_wrap_keeps_newest(self):
        log = EventLog(capacity=8)
        for i in range(20):
            log.emit(i, EV_TOKEN_PASS, "fabric", i)
        assert log.emitted == 20
        assert len(log) == 8
        assert log.dropped == 12
        evs = log.events()
        # Oldest-first, and only the newest 8 survive.
        assert [e.cycle for e in evs] == list(range(12, 20))
        assert [e.seq for e in evs] == list(range(12, 20))

    def test_counts_by_name_survive_wrap(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit(i, EV_PKT_ARRIVE, "port0")
        counts = log.counts_by_name()
        assert counts[KIND_NAMES[EV_PKT_ARRIVE]] == 10


class TestLogHistogram:
    def test_bucketing_and_stats(self):
        h = LogHistogram()
        for v in (0, 1, 2, 3, 100, 1000):
            h.record(v)
        assert h.count == 6
        assert h.min == 0 and h.max == 1000
        assert h.mean == pytest.approx(1106 / 6)

    def test_percentile_interpolates_within_bucket(self):
        # Four values in bucket [512, 1023]: p50 lands halfway through
        # the bucket (512 + 255 = 767), p99 interpolates to 1017 and
        # clamps to the observed max (1000).
        h = LogHistogram()
        for v in (600, 700, 900, 1000):
            h.record(v)
        assert h.percentile(50) == 767
        assert h.percentile(99) == 1000

    def test_percentile_clamped_to_max(self):
        h = LogHistogram()
        h.record(276)  # bucket upper bound would be 511
        assert h.percentile(50) == 276
        assert h.percentile(99) == 276

    def test_percentile_orders(self):
        h = LogHistogram()
        for _ in range(99):
            h.record(10)
        h.record(100_000)
        assert h.percentile(50) <= 15
        assert h.percentile(99.9) >= 65536 - 1

    def test_empty(self):
        h = LogHistogram()
        assert h.mean == 0.0 and h.percentile(50) == 0
        assert h.to_dict()["count"] == 0


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.count("fabric.tokens_passed")
        reg.count("fabric.tokens_passed", 3)
        assert reg.counter("fabric.tokens_passed") == 4
        state = {"depth": 7}
        reg.gauge("ingress.0.queue_depth", lambda: state["depth"])
        assert reg.read_gauge("ingress.0.queue_depth") == 7
        state["depth"] = 2
        assert reg.read_gauge("ingress.0.queue_depth") == 2
        assert "fabric.tokens_passed" in reg.names()

    def test_periodic_snapshots_no_duplicates(self):
        reg = MetricsRegistry(snapshot_interval=100)
        reg.count("c")
        for cycle in (50, 99, 100, 101, 150, 450, 460):
            reg.maybe_snapshot(cycle)
        cycles = [s["cycle"] for s in reg.snapshots]
        # One at the first boundary crossing, one after the jump; the
        # catch-up never emits duplicates for skipped boundaries.
        assert cycles == [100, 450]
        assert all(s["values"]["c"] == 1 for s in reg.snapshots)

    def test_snapshot_interval_zero_disables(self):
        reg = MetricsRegistry(snapshot_interval=0)
        for cycle in range(0, 10_000, 100):
            reg.maybe_snapshot(cycle)
        assert reg.snapshots == []

    def test_to_dict_evaluates_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("g", lambda: 42)
        reg.gauge("boom", lambda: 1 / 0)
        d = reg.to_dict()
        assert d["values"]["g"] == 42
        assert d["values"]["boom"] is None  # failing gauge degrades to None


class TestJourneyTracker:
    def test_full_lifecycle(self):
        j = JourneyTracker()
        j.arrive(1, src=0, cycle=10)
        j.lookup(1, dst=2, size=1024, cycle=15)
        j.enqueue(1, cycle=20)
        j.hop(1, cycle=30)
        j.hop(1, cycle=40)
        j.depart(1, cycle=50)
        assert j.completed == 1 and j.in_flight == 0
        pj = j.detailed[0]
        assert pj.src == 0 and pj.dst == 2 and pj.outcome == "delivered"
        assert pj.latency == 40 and pj.hops == 2
        assert pj.stage_latencies() == {
            "ingress": 10, "fabric": 20, "egress": 10, "total": 40,
        }
        assert j.stage_hist["total"].count == 1
        assert j.journey(pj.jid) is pj

    def test_enqueue_only_first_counts(self):
        j = JourneyTracker()
        j.arrive(1, 0, 0)
        j.enqueue(1, 5)
        j.enqueue(1, 9)  # re-offered header after a denied grant
        j.depart(1, 20)
        assert dict(j.detailed[0].marks)["enqueue"] == 5

    def test_drop_recorded_with_cause(self):
        j = JourneyTracker()
        j.arrive(7, 1, 0)
        j.drop(7, "checksum", 3)
        assert j.dropped == 1 and j.completed == 0
        assert j.detailed[0].outcome == "checksum"

    def test_unknown_key_ignored(self):
        j = JourneyTracker()
        j.depart(99, 5)
        j.hop(99, 5)
        j.drop(99, "x", 5)
        assert j.completed == 0 and j.dropped == 0

    def test_live_cap_evicts_oldest(self):
        from repro.telemetry.journey import LIVE_CAP

        j = JourneyTracker(detail_limit=0)
        for k in range(LIVE_CAP + 10):
            j.arrive(k, 0, k)
        assert j.in_flight == LIVE_CAP
        assert j.evicted == 10
        j.depart(0, 1)  # key 0 was evicted; no effect
        assert j.completed == 0

    def test_detail_limit(self):
        j = JourneyTracker(detail_limit=2)
        for k in range(5):
            j.arrive(k, 0, 0)
            j.depart(k, 10)
        assert j.completed == 5
        assert len(j.detailed) == 2


class TestKernelProfile:
    def test_burst_mix(self):
        p = KernelProfile()
        p.cmd_counts[1] = 30  # Put
        p.cmd_counts[2] = 10  # Get
        p.cmd_counts[3] = 5   # PutBurst
        p.cmd_counts[4] = 15  # GetBurst
        p.cmd_counts[0] = 7   # Timeout
        mix = p.burst_mix()
        assert mix["word_ops"] == 40
        assert mix["burst_ops"] == 20
        assert mix["timeouts"] == 7

    def test_mean_bucket_occupancy(self):
        p = KernelProfile()
        assert p.mean_bucket_occupancy == 0.0
        p.bucket_drains = 4
        p.bucket_events = 10
        assert p.mean_bucket_occupancy == 2.5


class TestRuntime:
    def test_disabled_by_default(self):
        assert runtime.get() is None

    def test_capture_restores_prior_state(self):
        outer = runtime.enable()
        with runtime.capture() as tel:
            assert runtime.get() is tel
            assert tel is not outer
        assert runtime.get() is outer

    def test_capture_restores_none(self):
        with runtime.capture():
            pass
        assert runtime.get() is None

    def test_summary_is_json_safe(self):
        import json

        with runtime.capture() as tel:
            tel.count("x")
            tel.emit(1, EV_TOKEN_PASS, "fabric", 2)
            tel.journeys.arrive(1, 0, 0)
            tel.journeys.depart(1, 7)
        json.dumps(tel.summary())


def _fingerprint(result):
    return (
        result.cycles,
        result.delivered_packets,
        result.delivered_words,
        result.gbps,
        result.mpps,
        tuple(result.per_port_packets),
        tuple(sorted(result.latency.items())),
    )


class TestDisabledModeIdentity:
    """Telemetry on vs off must not change a single simulated number."""

    @pytest.mark.parametrize("fidelity,workload", [
        ("fabric", WorkloadSpec(pattern="uniform", quanta=300)),
        ("router", WorkloadSpec(pattern="permutation", packets=80)),
        ("wordlevel", WorkloadSpec(pattern="permutation", cycles=8_000,
                                   warmup_cycles=0)),
    ])
    def test_engine_bit_identical(self, fidelity, workload):
        config = SimConfig(fidelity=fidelity, seed=3)
        runtime.disable()
        plain = run_config(config, workload)
        with runtime.capture() as tel:
            traced = run_config(config, workload)
        assert _fingerprint(plain) == _fingerprint(traced)
        # And the traced run actually recorded something.
        assert tel.events.emitted > 0

    def test_router_telemetry_content(self):
        config = SimConfig(fidelity="router", seed=0)
        workload = WorkloadSpec(pattern="permutation", packets=80)
        with runtime.capture() as tel:
            result = run_config(config, workload)
        assert tel.journeys.completed >= result.delivered_packets
        assert tel.registry.counter("fabric.tokens_passed") > 0
        assert tel.registry.counter("fabric.xbar_configs") > 0
        assert tel.registry.read_gauge("router.delivered_packets") == \
            result.delivered_packets
        assert tel.registry.read_gauge("kernel.events_dispatched") == \
            result.extra["kernel_events"]
        # Kernel self-profile saw the dispatch loop.
        assert sum(tel.kernel.cmd_counts) > 0
        assert tel.kernel.bucket_drains > 0

    def test_wordlevel_telemetry_content(self):
        config = SimConfig(fidelity="wordlevel", seed=0)
        workload = WorkloadSpec(pattern="permutation", cycles=8_000,
                                warmup_cycles=0)
        with runtime.capture() as tel:
            result = run_config(config, workload)
        assert result.delivered_packets > 0
        assert tel.journeys.completed == result.delivered_packets
        assert tel.registry.counter("fabric.tokens_passed") > 0
        marks = dict(tel.journeys.detailed[0].marks)
        assert {"arrive", "lookup", "enqueue", "depart"} <= set(marks)


class TestTokenCounters:
    def test_rotating_token_counts_passes(self):
        from repro.core.token import RotatingToken

        with runtime.capture() as tel:
            tok = RotatingToken(4)
            for _ in range(5):
                tok.advance()
        assert tel.registry.counter("fabric.tokens_passed") == 5

    def test_no_recorder_no_counting(self):
        from repro.core.token import RotatingToken

        tok = RotatingToken(4)
        tok.advance()  # must not raise with telemetry off
        assert runtime.get() is None
