"""Trace replay and the shard protocol for every new traffic source:
replay determinism, TraceReplay state/restore, and serial-vs-sharded
bit-identity through the fabric shard machinery."""

import json

import pytest

from repro.parallel.fabric_shard import ShardSpec, run_serial, run_sharded
from repro.traffic.build import shard_source
from repro.traffic.replay import (
    TraceReplay,
    generate_trace,
    iter_flows,
    run_replay,
    scan_trace,
)
from repro.traffic.spec import PRESETS, TrafficSpec


@pytest.fixture()
def trace_csv(tmp_path):
    path = str(tmp_path / "t.csv")
    generate_trace(path, flows=120, ports=4, seed=9)
    return path


@pytest.fixture()
def trace_jsonl(tmp_path):
    path = str(tmp_path / "t.jsonl")
    generate_trace(path, flows=120, ports=4, seed=9)
    return path


class TestTraceFiles:
    def test_generate_is_deterministic(self, tmp_path):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        na = generate_trace(a, flows=200, ports=4, seed=5)
        nb = generate_trace(b, flows=200, ports=4, seed=5)
        assert na == nb
        assert open(a).read() == open(b).read()
        # A different seed writes a different trace.
        c = str(tmp_path / "c.csv")
        generate_trace(c, flows=200, ports=4, seed=6)
        assert open(a).read() != open(c).read()

    def test_csv_and_jsonl_parse_identically(self, trace_csv, trace_jsonl):
        assert list(iter_flows(trace_csv)) == list(iter_flows(trace_jsonl))
        assert scan_trace(trace_csv) == scan_trace(trace_jsonl)

    def test_scan_totals(self, trace_csv):
        info = scan_trace(trace_csv)
        assert info["records"] == 120
        assert info["ports"] == 4
        assert info["packets"] >= info["records"]

    def test_malformed_records_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("src,dst,bytes,count\n0,not_a_port,64,1\n")
        with pytest.raises(ValueError, match="malformed"):
            list(iter_flows(str(bad)))

    def test_out_of_range_port_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("src,dst,bytes,count\n0,9,64,1\n")
        replay = TraceReplay(str(bad), n=4)
        with pytest.raises(ValueError, match="out of range"):
            replay.next_packet(0)

    def test_missing_file_rejected(self):
        with pytest.raises(FileNotFoundError):
            TraceReplay("/no/such/trace.csv", n=4)


class TestTraceReplayModel:
    def test_streams_every_packet_once(self, trace_csv):
        info = scan_trace(trace_csv)
        replay = TraceReplay(trace_csv, n=4)
        taken = 0
        for port in range(4):
            while replay.next_packet(port) is not None:
                taken += 1
        assert taken == info["packets"]
        # Exhausted (loop=False): every port returns None forever.
        assert all(replay.next_packet(p) is None for p in range(4))

    def test_loop_wraps_at_eof(self, trace_csv):
        info = scan_trace(trace_csv)
        replay = TraceReplay(trace_csv, n=4, loop=True)
        first_pass = [replay.next_packet(0) for _ in range(50)]
        assert None not in first_pass
        # Far more draws than one file pass still never run dry.
        for _ in range(info["packets"]):
            assert replay.next_packet(0) is not None

    def test_loop_with_empty_port_stops(self, tmp_path):
        # Port 3 never appears as a src: pulling from it must not spin.
        path = tmp_path / "p.csv"
        path.write_text("src,dst,bytes,count\n0,1,64,2\n1,0,64,2\n")
        replay = TraceReplay(str(path), n=4, loop=True)
        assert replay.next_packet(3) is None

    def test_state_restore_is_exact(self, trace_csv):
        replay = TraceReplay(trace_csv, n=4)
        # Consume an uneven interleaving across ports.
        for port, k in ((0, 17), (1, 3), (2, 11), (3, 0)):
            for _ in range(k):
                replay.next_packet(port)
        mark = replay.state()
        assert mark == (17, 3, 11, 0)
        tail = [replay.next_packet(p) for p in (0, 1, 2, 3) * 12]
        restored = TraceReplay(trace_csv, n=4).restore(mark)
        assert [restored.next_packet(p) for p in (0, 1, 2, 3) * 12] == tail

    def test_restore_is_interleaving_independent(self, trace_csv):
        # Two replays reaching the same consumed counts by different
        # orders must produce identical futures.
        a = TraceReplay(trace_csv, n=4)
        for _ in range(10):
            a.next_packet(0)
        for _ in range(5):
            a.next_packet(2)
        b = TraceReplay(trace_csv, n=4)
        for _ in range(5):
            b.next_packet(2)
        for _ in range(10):
            b.next_packet(0)
        assert a.state() == b.state()
        seq = [(p, a.next_packet(p)) for p in (0, 1, 2, 3) * 8]
        assert [(p, b.next_packet(p)) for p in (0, 1, 2, 3) * 8] == seq


def _shard_spec(source, ports=4, quanta=320, shards=4):
    return ShardSpec(
        ports=ports,
        source=ShardSpec.pack_source(source),
        quanta=quanta,
        warmup_quanta=40,
        shards=shards,
    )


class TestShardIdentity:
    """run_sharded must be bit-identical to run_serial for every new
    counter-based source kind."""

    PRESET_NAMES = ["imix", "imix_onoff", "imix_heavy", "bursty",
                    "hotspot_drift", "bernoulli"]

    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_presets_shard_identically(self, name):
        spec = _shard_spec(shard_source(PRESETS[name], seed=11))
        serial = run_serial(spec)
        sharded, info = run_sharded(spec, workers=1)
        assert info.shards == 4
        assert serial.counters() == sharded.counters()
        assert serial.delivered_packets > 0

    def test_legacy_spec_shards_via_forced_counter_model(self):
        # The legacy trio cannot shard through its historical np-rng
        # sources; the "traffic" shard kind forces the counter-based
        # model, which must be self-consistent serial-vs-sharded.
        from repro.traffic.spec import spec_from_legacy

        legacy = spec_from_legacy(pattern="uniform", packet_bytes=512)
        spec = _shard_spec(shard_source(legacy, seed=2))
        serial = run_serial(spec)
        sharded, _ = run_sharded(spec, workers=1)
        assert serial.counters() == sharded.counters()
        assert serial.delivered_packets > 0

    def test_replay_shards_identically(self, trace_csv):
        source = {
            "kind": "traffic",
            "json": TrafficSpec(kind="replay", trace=trace_csv).to_json(),
            "seed": 0,
        }
        spec = _shard_spec(source, quanta=200, shards=5)
        serial = run_serial(spec)
        sharded, _ = run_sharded(spec, workers=1)
        assert serial.counters() == sharded.counters()
        assert serial.delivered_packets > 0

    def test_unknown_source_kind_still_rejected(self):
        spec = _shard_spec({"kind": "zipf"})
        with pytest.raises(ValueError, match="unknown shardable source"):
            run_serial(spec)


class TestRunReplaySmoke:
    def test_run_replay_checks_pass(self, trace_csv):
        doc, problems = run_replay(trace_csv, quanta=120, cycles=8_000,
                                   shards=3, check=True)
        assert problems == []
        assert doc["schema"] == "repro-replay-stats/1"
        assert doc["fabric"]["sharded_match"] is True
        assert doc["fabric"]["delivered_packets"] > 0
        assert doc["wordlevel"]["delivered_packets"] > 0
        # The document is JSON-serializable as-is (the CI artifact).
        json.dumps(doc)

    def test_run_replay_is_deterministic(self, trace_csv):
        doc1, _ = run_replay(trace_csv, quanta=100, cycles=6_000, shards=2)
        doc2, _ = run_replay(trace_csv, quanta=100, cycles=6_000, shards=2)
        assert doc1 == doc2


class TestEngineReplay:
    def test_fabric_engine_replays_a_trace_path(self, trace_csv):
        from repro.config import SimConfig
        from repro.engines import FabricEngine, WorkloadSpec

        res = FabricEngine(SimConfig(seed=0)).run(
            WorkloadSpec(traffic=trace_csv, quanta=150)
        )
        assert res.delivered_packets > 0
        info = scan_trace(trace_csv)
        # loop=False: the engine can never deliver more than the trace holds.
        assert res.delivered_packets <= info["packets"]

    def test_wordlevel_engine_loops_the_trace(self, trace_csv):
        from repro.config import SimConfig
        from repro.engines import WordLevelEngine, WorkloadSpec

        res = WordLevelEngine(SimConfig(fidelity="wordlevel", seed=0)).run(
            WorkloadSpec(
                traffic=TrafficSpec(kind="replay", trace=trace_csv, loop=True),
                cycles=10_000,
                warmup_cycles=0,
            )
        )
        assert res.delivered_packets > 0
        assert res.extra.get("payload_errors", 0) == 0

    def test_router_engine_replays_a_trace(self, trace_csv):
        from repro.config import SimConfig
        from repro.engines import RouterEngine, WorkloadSpec

        res = RouterEngine(SimConfig(fidelity="router", seed=0)).run(
            WorkloadSpec(
                traffic=TrafficSpec(kind="replay", trace=trace_csv, loop=True),
                packets=60,
            )
        )
        assert res.delivered_packets >= 60
