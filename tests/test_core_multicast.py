"""Multicast allocation with fanout splitting (section 8.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multicast import (
    MulticastAllocator,
    ingress_replication_quanta,
)
from repro.core.ring import RingGeometry


@pytest.fixture(scope="module")
def mc4():
    return MulticastAllocator(RingGeometry(4))


class TestSingleInput:
    def test_full_fanout_single_quantum(self, mc4):
        alloc = mc4.allocate([frozenset({1, 2, 3}), None, None, None], 0)
        grant = alloc.grants[0]
        assert grant.served == frozenset({1, 2, 3})
        # Frugal split: clockwise covers {1, 2}, counterclockwise {3};
        # three ring links total and expansion bounded by the short side.
        assert len(grant.paths) == 2
        assert sum(p.hops for p in grant.paths) == 3
        assert grant.expansion == 2
        assert alloc.is_conflict_free()

    def test_self_in_set_is_free(self, mc4):
        alloc = mc4.allocate([frozenset({0, 2}), None, None, None], 0)
        assert alloc.grants[0].served == frozenset({0, 2})

    def test_self_only(self, mc4):
        alloc = mc4.allocate([frozenset({0}), None, None, None], 0)
        grant = alloc.grants[0]
        assert grant.served == frozenset({0})
        assert grant.paths == ()
        assert grant.expansion == 0

    def test_both_directions_used(self, mc4):
        # {1, 3} from 0: cw reaches 1, ccw reaches 3 (shorter than
        # sweeping cw all the way).
        alloc = mc4.allocate([frozenset({1, 3}), None, None, None], 0)
        grant = alloc.grants[0]
        assert grant.served == frozenset({1, 3})
        dirs = {p.direction for p in grant.paths}
        assert dirs == {"cw", "ccw"}

    def test_empty_set_rejected(self, mc4):
        with pytest.raises(ValueError):
            mc4.allocate([frozenset(), None, None, None], 0)

    def test_length_checked(self, mc4):
        with pytest.raises(ValueError):
            mc4.allocate([None, None], 0)


class TestContention:
    def test_outputs_partitioned(self, mc4):
        alloc = mc4.allocate(
            [frozenset({1, 2}), frozenset({2, 3}), None, None], 0
        )
        served0 = alloc.grants[0].served
        served1 = alloc.grants.get(1)
        if served1:
            assert not (served0 & served1.served)
        assert alloc.is_conflict_free()

    def test_fanout_splitting_partial_service(self, mc4):
        # Master takes output 2; downstream keeps 2 pending for later.
        alloc = mc4.allocate([frozenset({2}), frozenset({2, 3}), None, None], 0)
        assert alloc.grants[0].served == frozenset({2})
        assert alloc.grants[1].served == frozenset({3})

    def test_fully_blocked_input(self, mc4):
        alloc = mc4.allocate([frozenset({2}), frozenset({2}), None, None], 0)
        assert 1 in alloc.blocked

    def test_total_copies(self, mc4):
        alloc = mc4.allocate(
            [frozenset({1, 2, 3}), None, None, frozenset({0})], 0
        )
        assert alloc.total_copies == alloc.grants[0].copies + alloc.grants[3].copies


class TestHelpers:
    def test_ingress_replication_count(self):
        assert ingress_replication_quanta(3) == 3
        with pytest.raises(ValueError):
            ingress_replication_quanta(0)


@given(data=st.data(), n=st.integers(3, 8))
@settings(max_examples=150, deadline=None)
def test_multicast_invariants(data, n):
    """Property: any multicast request mix yields conflict-free grants,
    served sets are subsets of requests, and the master always gets at
    least one leaf."""
    ring = RingGeometry(n)
    mc = MulticastAllocator(ring)
    token = data.draw(st.integers(0, n - 1))
    requests = []
    for i in range(n):
        maybe = data.draw(
            st.one_of(
                st.none(),
                st.sets(st.integers(0, n - 1), min_size=1, max_size=n),
            )
        )
        requests.append(frozenset(maybe) if maybe is not None else None)
    alloc = mc.allocate(requests, token)
    assert alloc.is_conflict_free()
    for src, grant in alloc.grants.items():
        assert grant.served <= requests[src]
        assert grant.served
    if requests[token]:
        # Master can always serve at least one destination (its own
        # output or the first hop in either direction is free).
        assert token in alloc.grants
