"""Switch processor: route instructions, fanout, timing."""

import pytest

from repro.raw.switchproc import RouteInstruction, SwitchProcessor
from repro.sim.kernel import Get, Put, Simulator


def make_channels(sim, n, **kw):
    return [sim.channel(f"ch{i}", **kw) for i in range(n)]


class TestRouteInstruction:
    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            RouteInstruction(moves=(), repeat=0)

    def test_duplicate_destination_rejected(self):
        sim = Simulator()
        a, b, c = make_channels(sim, 3)
        with pytest.raises(ValueError):
            RouteInstruction(moves=((a, c), (b, c)))

    def test_fanout_shares_source(self):
        sim = Simulator()
        a, b, c = make_channels(sim, 3)
        instr = RouteInstruction(moves=((a, b), (a, c)))
        assert instr.sources() == (a,)

    def test_distinct_sources_listed_in_order(self):
        sim = Simulator()
        a, b, c, d = make_channels(sim, 4)
        instr = RouteInstruction(moves=((b, c), (a, d)))
        assert instr.sources() == (b, a)

    def test_words_moved(self):
        sim = Simulator()
        a, b = make_channels(sim, 2)
        assert RouteInstruction(moves=((a, b),), repeat=5).words_moved == 5


class TestExecution:
    def test_simple_forward(self):
        sim = Simulator()
        src, dst = make_channels(sim, 2, capacity=4)
        sp = SwitchProcessor(0)
        got = []

        def feeder():
            for i in range(3):
                yield Put(src, i)

        def collector():
            for _ in range(3):
                got.append((yield Get(dst)))

        sim.add_process(feeder())
        sim.add_process(sp.execute([RouteInstruction(moves=((src, dst),), repeat=3)]))
        sim.add_process(collector())
        sim.run(raise_on_deadlock=False)
        assert got == [0, 1, 2]
        assert sp.words_routed == 3
        assert sp.instructions_executed == 3

    def test_fanout_duplicates_word(self):
        sim = Simulator()
        src, d1, d2 = make_channels(sim, 3, capacity=4)
        sp = SwitchProcessor(0)
        got1, got2 = [], []

        def feeder():
            yield Put(src, "w")

        def c1():
            got1.append((yield Get(d1)))

        def c2():
            got2.append((yield Get(d2)))

        sim.add_process(feeder())
        sim.add_process(
            sp.execute([RouteInstruction(moves=((src, d1), (src, d2)))])
        )
        sim.add_process(c1())
        sim.add_process(c2())
        sim.run(raise_on_deadlock=False)
        assert got1 == ["w"] and got2 == ["w"]

    def test_nop_idles_exact_cycles(self):
        sim = Simulator()
        sp = SwitchProcessor(0)
        sim.add_process(sp.execute([RouteInstruction(moves=(), repeat=7)]))
        sim.run()
        assert sim.now == 7

    def test_parallel_moves_same_cycle(self):
        """Two independent streams through one switch keep full rate."""
        sim = Simulator()
        a_in, a_out, b_in, b_out = make_channels(sim, 4, capacity=1, latency=1)
        sp = SwitchProcessor(0)
        n = 50
        got_a, got_b = [], []

        def feed(ch, tag):
            for i in range(n):
                yield Put(ch, (tag, i))

        def collect(ch, sink):
            for _ in range(n):
                sink.append((yield Get(ch)))

        sim.add_process(feed(a_in, "a"))
        sim.add_process(feed(b_in, "b"))
        sim.add_process(
            sp.execute(
                [RouteInstruction(moves=((a_in, a_out), (b_in, b_out)), repeat=n)]
            )
        )
        sim.add_process(collect(a_out, got_a))
        sim.add_process(collect(b_out, got_b))
        sim.run(raise_on_deadlock=False)
        assert got_a == [("a", i) for i in range(n)]
        assert got_b == [("b", i) for i in range(n)]
        # Both streams move 1 word/cycle simultaneously.
        assert sim.now <= n + 5

    def test_all_or_nothing_stalls_as_unit(self):
        """A bundled instruction waits for its slowest operand."""
        sim = Simulator()
        fast_in, fast_out, slow_in, slow_out = make_channels(sim, 4, capacity=4)
        sp = SwitchProcessor(0)
        arrival = {}

        def feed_fast():
            yield Put(fast_in, 1)

        def feed_slow():
            from repro.sim.kernel import Timeout

            yield Timeout(40)
            yield Put(slow_in, 2)

        def collect(ch, name):
            yield Get(ch)
            arrival[name] = sim.now

        sim.add_process(feed_fast())
        sim.add_process(feed_slow())
        sim.add_process(
            sp.execute(
                [RouteInstruction(moves=((fast_in, fast_out), (slow_in, slow_out)))]
            )
        )
        sim.add_process(collect(fast_out, "fast"))
        sim.add_process(collect(slow_out, "slow"))
        sim.run(raise_on_deadlock=False)
        # The fast word is held back until the slow word is present.
        assert arrival["fast"] >= 40
