"""Ablation (sections 5.2 / 6.5): header/body pipelining.

Regenerates the cost of the naive non-overlapped implementation, where
ingress header work and route lookup sit on every quantum's critical
path -- the overlap is worth ~1.7x on 64-byte packets.
"""

import pytest

from repro.experiments import ablations


def test_pipelining_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: ablations.run_pipelining(quanta=3000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("speedup_from_pipelining") > 1.4
