"""Section 8.3: computation in the switch fabric.

Regenerates the throughput price of each in-fabric service (byteswap
free, cipher/checksum at half rate) plus the functional round trip.
"""

import pytest

from repro.experiments import compute_ext


def test_fabric_compute_costs(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: compute_ext.run(quanta=2000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("byteswap_relative") == pytest.approx(1.0, abs=0.01)
    assert result.measured("xor_cipher_relative") == pytest.approx(0.5, abs=0.02)
    assert result.measured("cipher_roundtrip_ok") is True
