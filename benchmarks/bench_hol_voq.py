"""Chapter 2 claim: HOL-limited FIFO (~58.6%) vs VOQ/iSLIP (~100%) vs OQ.

Regenerates the throughput comparison behind the thesis's virtual-
output-queueing discussion (section 2.2.2, quoting McKeown/Karol).
"""

import pytest

from repro.experiments import claims_ch2


def test_hol_vs_voq_vs_oq(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: claims_ch2.run_hol_voq(ports=(4, 8, 16), slots=15000, warmup=1500),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("fifo_N16") == pytest.approx(0.586, abs=0.05)
    assert result.measured("voq_islip_N16") > 0.95
    assert result.measured("fifo_N4") < result.measured("voq_islip_N4")
