"""Chapter 2 claim: fixed cells (~100%) vs variable-length packets (~60%).

Regenerates the "why fixed length packets" utilization argument of
section 2.2.2 on the slot-level backplane models.
"""

import pytest

from repro.experiments import claims_ch2


def test_cells_vs_variable_length(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: claims_ch2.run_cells_vs_packets(slots=25000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("cell_mode_util") > 0.85
    assert result.measured("variable_length_util") == pytest.approx(0.60, abs=0.08)
