"""Fig 5-1 worked example + allocator microbenchmark.

The first test pins the exact allocation of the thesis's illustration;
the second times the allocation rule itself (it runs once per routing
quantum on every Crossbar Processor, so its cost matters).
"""

import pytest

from repro.core.allocator import Allocator
from repro.core.ring import RingGeometry
from repro.experiments import fig5_1


def test_fig5_1_worked_example(benchmark, record_table):
    result = benchmark.pedantic(fig5_1.run, rounds=1, iterations=1)
    record_table(result)
    for row in result.rows:
        assert row["measured"] == row["paper"], row


def test_allocation_rule_speed(benchmark):
    allocator = Allocator(RingGeometry(4))
    cases = [
        ((2, 3, 0, 1), 0),
        ((0, 0, 0, 0), 2),
        ((None, 1, None, 3), 1),
        ((1, 2, 3, 0), 3),
    ]

    def run_batch():
        for headers, token in cases:
            allocator.allocate(headers, token)

    benchmark(run_batch)
