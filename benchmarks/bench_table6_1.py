"""Chapter 6 / Table 6.1: configuration space and its minimization.

Regenerates the 2,500-point space, the per-tile minimization, and the
IMEM-fit arithmetic; the benchmark time covers the full three-pass
compile (reservation walk over the space + minimization + codegen size).
"""

import pytest

from repro.experiments import table6_1


def test_table6_1_config_space(benchmark, record_table):
    result = benchmark.pedantic(table6_1.run, rounds=1, iterations=1)
    record_table(result)
    assert result.measured("global_space") == 2500
    assert 20 <= result.measured("minimized_configs") <= 48
    assert result.measured("reduction_factor") > 50
    assert result.measured("fits_switch_imem") is True
