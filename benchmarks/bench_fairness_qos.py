"""Sections 5.4 / 8.7: fairness bound and weighted-token QoS.

Regenerates the starvation bound (a backlogged input is served within
N-1 quanta) and the weighted-share table.
"""

import pytest

from repro.experiments import fairness_qos


def test_fairness_bound(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: fairness_qos.run_fairness(quanta=4000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("worst_starvation_gap") == 3
    assert result.measured("jains_index") == pytest.approx(1.0, abs=0.01)


def test_qos_weighted_tokens(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: fairness_qos.run_qos(quanta=6000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("weighted_share_port0") == pytest.approx(4 / 7, abs=0.02)
    assert result.measured("weighted_min_share") == pytest.approx(1 / 7, abs=0.02)
