"""Section 8.2: route lookup structures on a 250 MHz tile.

Regenerates the PATRICIA-vs-compressed-table comparison: lookups per
second through the tile cache model, memory touches, and footprints.
"""

import pytest

from repro.experiments import lookup_ext


def test_lookup_structures(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: lookup_ext.run(table_sizes=(1000, 10000, 50000), lookups=2000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    for n in (1000, 10000, 50000):
        assert result.measured(f"compressed_mlookups_per_s_{n}") > result.measured(
            f"trie_mlookups_per_s_{n}"
        )
        assert result.measured(f"compressed_max_visits_le3_{n}") is True
    # Section 8.2's software-multithreading claim.
    assert result.measured("nonblocking_speedup_W8") == pytest.approx(8.0, rel=0.01)
    assert result.measured("nonblocking_mlps_W8") > 3.5  # beats the IXP1200
