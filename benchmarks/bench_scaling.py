"""Section 8.5: the Rotating Crossbar at 4, 8, 16 ports.

Regenerates both scaling regimes: neighbor permutations scale linearly,
antipodal permutations hit the ring bisection.
"""

import pytest

from repro.experiments import scaling


def test_scaling_regimes(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: scaling.run(port_counts=(4, 8, 16), quanta=2000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("neighbor_gbps_N16") == pytest.approx(
        4 * result.measured("neighbor_gbps_N4"), rel=0.05
    )
    assert result.measured("antipodal_gbps_N16") == pytest.approx(
        result.measured("antipodal_gbps_N4"), rel=0.1
    )
