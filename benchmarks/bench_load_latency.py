"""Latency vs offered load (the edge-router characterization).

An extension figure: the thesis evaluates saturated throughput only;
this regenerates the queueing curve its line-card/buffering assumptions
(section 4.4) imply, and pins the knee to the fabric's measured average
capacity.
"""

import math

import pytest

from repro.experiments import load_latency


def test_load_latency_curve(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: load_latency.run(packets_per_port=300),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    # Latency is monotone-ish in load and explodes past the knee.
    lats = [result.measured(f"mean_us_at_{l}") for l in (0.2, 0.6, 0.95)]
    assert all(not math.isnan(x) for x in lats)
    assert lats[0] < lats[1] < lats[2]
    # No drops at light load; drops appear at overload.
    assert result.measured("drop_pct_at_0.2") == 0.0
    assert result.measured("drop_pct_at_0.95") > 0.0
    # The top-load goodput approaches the fabric's average capacity.
    assert result.measured("top_load_goodput_over_capacity") > 0.9
