"""Control plane: route-update rate with the data plane under load.

The chapter-2 case studies put table maintenance on a network processor
so the forwarding path never stalls; this bench regenerates that
property on our router: a burst of route updates applies on schedule
while saturated uniform traffic keeps flowing at the undisturbed rate.
"""

import numpy as np
import pytest

from repro.experiments.common import ExperimentResult
from repro.ip.addr import Prefix
from repro.router import NetworkProcessor, RawRouter, RouteUpdate
from repro.traffic import (
    FixedSize,
    PacketFactory,
    Saturated,
    UniformDestinations,
    Workload,
)


def run_control_plane(updates=200, spacing=1_000, seed=0):
    result = ExperimentResult(
        name="control_plane",
        description="Route updates applied under saturated forwarding",
    )

    def build(with_updates: bool):
        rng = np.random.default_rng(seed)
        router = RawRouter(warmup_cycles=20_000)
        workload = Workload(
            UniformDestinations(4, rng, exclude_self=True),
            FixedSize(512),
            Saturated(),
        )
        router.attach_saturated(workload, PacketFactory(4, rng))
        processor = None
        if with_updates:
            schedule = [
                RouteUpdate(20_000 + i * spacing, Prefix((i + 1) << 20, 16), i % 4)
                for i in range(updates)
            ]
            processor = NetworkProcessor(router, schedule)
            processor.attach()
        return router, processor

    baseline, _ = build(False)
    base_gbps = baseline.run(max_cycles=20_000 + updates * spacing + 30_000).gbps

    router, processor = build(True)
    res = router.run(max_cycles=20_000 + updates * spacing + 30_000)

    result.add("updates_applied", processor.log.count(), updates)
    result.add("gbps_with_updates", res.gbps)
    result.add("gbps_baseline", base_gbps)
    result.add("throughput_ratio", res.gbps / base_gbps if base_gbps else 0.0, 1.0)
    applied = [t for t, _ in processor.log.applied]
    mean_skew = float(np.mean([t - u.cycle for t, u in processor.log.applied]))
    result.add("mean_apply_skew_cycles", mean_skew)
    result.notes = (
        "updates ride the dynamic network and the control processor; the "
        "static-network data path never carries control traffic, so the "
        "forwarding rate is unchanged (the MGR division of labour)."
    )
    return result


def test_control_plane_updates(benchmark, record_table):
    result = benchmark.pedantic(run_control_plane, rounds=1, iterations=1)
    record_table(result)
    assert result.measured("updates_applied") == 200
    assert result.measured("throughput_ratio") == pytest.approx(1.0, abs=0.02)
    assert result.measured("mean_apply_skew_cycles") < 2_000
