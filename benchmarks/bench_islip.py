"""iSLIP convergence: delay vs scheduler iterations (vs PIM).

Regenerates the section 2.2.2 point that iSLIP "attempts to quickly
converge on a conflict-free match in multiple iterations".
"""

import pytest

from repro.experiments import claims_ch2


def test_islip_iterations(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: claims_ch2.run_islip_iterations(slots=12000, warmup=1200),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("islip_4it_delay") < result.measured("islip_1it_delay")
    assert result.measured("islip_4it_tput") > 0.9
