"""Word-level cross-validation: the full static-network model's rates.

Runs the heavyweight word-level router at the two Fig 7-1 endpoints and
reports its throughput next to the phase model's and the paper's -- the
fidelity check behind every phase-level number in the other benches.
"""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments import paperdata
from repro.router.wordlevel import WordLevelRouter, permutation_source


def run_wordlevel_endpoints():
    result = ExperimentResult(
        name="wordlevel_xval",
        description="Word-level (every word on the static network) peak rates",
    )
    for size, until in ((64, 25_000), (1024, 60_000)):
        router = WordLevelRouter(permutation_source(size), verify_payloads=True)
        res = router.run(until_cycles=until, warmup_cycles=10_000)
        result.add(
            f"{size}B_gbps",
            res.gbps,
            paperdata.PEAK_GBPS[size],
            packets=res.delivered_packets,
            payload_errors=router.payload_errors,
        )
    return result


def test_wordlevel_cross_validation(benchmark, record_table):
    result = benchmark.pedantic(run_wordlevel_endpoints, rounds=1, iterations=1)
    record_table(result)
    assert result.measured("1024B_gbps") == pytest.approx(26.9, rel=0.15)
    assert result.measured("64B_gbps") == pytest.approx(7.3, rel=0.30)
    for row in result.rows:
        assert row["payload_errors"] == 0
