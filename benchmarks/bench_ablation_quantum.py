"""Ablation (section 4.3): crossbar transfer-block size.

Regenerates the fragmentation cost curve: shrinking the quantum
multiplies the per-quantum control overhead across a packet; the design
point (256 words = one max packet) sits at the top of the curve.
"""

import pytest

from repro.experiments import ablations


def test_quantum_size_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: ablations.run_quantum_size(quanta=3000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    series = [result.measured(f"quantum_{q}w") for q in (16, 32, 64, 128, 256)]
    assert series == sorted(series)
    assert result.measured("full_over_smallest") > 2.5
