"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's tables/figures; the
measured-vs-paper tables are collected here and emitted in the terminal
summary (so they survive pytest's output capture and land in
``bench_output.txt``).
"""

import pytest

_TABLES = []


@pytest.fixture
def record_table():
    """Benchmarks call this with an ExperimentResult (or raw string) to
    have its table printed in the run summary."""

    def _record(result):
        text = result if isinstance(result, str) else result.to_text()
        _TABLES.append(text)
        return result

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
