"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's tables/figures; the
measured-vs-paper tables are collected here and emitted in the terminal
summary (so they survive pytest's output capture and land in
``bench_output.txt``), and dumped as structured JSON to
``BENCH_results.json`` next to this file so throughput regressions can
be diffed mechanically across runs.
"""

import json
from pathlib import Path

import pytest

_TABLES = []
_RESULTS = []

RESULTS_PATH = Path(__file__).parent / "BENCH_results.json"


@pytest.fixture
def record_table():
    """Benchmarks call this with an ExperimentResult (or raw string) to
    have its table printed in the run summary and written to
    ``BENCH_results.json``."""

    def _record(result):
        if isinstance(result, str):
            _TABLES.append(result)
            _RESULTS.append({"name": None, "text": result})
            return result
        _TABLES.append(result.to_text())
        _RESULTS.append(
            {
                "name": result.name,
                "description": result.description,
                "rows": [dict(row) for row in result.rows],
            }
        )
        return result

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    # Merge into the existing file: the kernel wall-clock bench
    # (``python -m repro bench``) keeps its trajectory under other keys.
    try:
        data = json.loads(RESULTS_PATH.read_text())
    except (OSError, ValueError):
        data = {}
    data["tables"] = _RESULTS
    RESULTS_PATH.write_text(json.dumps(data, indent=2, default=str) + "\n")
    terminalreporter.write_line("")
    terminalreporter.write_line(f"structured tables written to {RESULTS_PATH}")
