"""Fig 7-1 (top): peak throughput vs packet size vs Click.

Regenerates the series {64, 128, 256, 512, 1024}B plus the Click bar and
the 3.3 Mpps headline; the benchmark time is the cost of the full sweep
on the quantum-level engine.
"""

import pytest

from repro.experiments import fig7_1, paperdata


def test_fig7_1_peak(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: fig7_1.run_peak(quanta=2000, click_packets=2000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    for size, ref in paperdata.PEAK_GBPS.items():
        assert result.measured(f"{size}B") == pytest.approx(ref, rel=0.16)
    assert result.measured("peak_mpps_1024B") == pytest.approx(3.3, rel=0.03)
    assert result.measured("1024B") / result.measured("click_64B") > 100
