"""Fig 7-3: per-tile utilization timelines (word-level model).

Regenerates both 800-cycle panels as ASCII Gantt charts plus the
section 7.4 claims: utilization rises with packet size, ingress tiles
sit blocked on the crossbar for small packets.
"""

import pytest

from repro.experiments import fig7_3


def test_fig7_3_utilization(benchmark, record_table):
    result = benchmark.pedantic(fig7_3.run, rounds=1, iterations=1)
    record_table(result)
    assert result.measured("busy_ratio_1024_over_64") > 1.0
    assert result.measured("ingress_busy_1024B") > result.measured("ingress_busy_64B")
    assert result.measured("ingress_blocked_frac_64B") > 0.5
