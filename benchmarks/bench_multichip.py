"""Section 8.5 composition: Clos of 4-port crossbars vs one big ring.

Regenerates the quantified case for the thesis's multi-crossbar scaling
proposal: antipodal permutations recover ~4x throughput under the Clos.
"""

import pytest

from repro.experiments import multichip


def test_clos_composition(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: multichip.run(quanta=1500),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("antipodal_clos_gain") > 3.0
    assert result.measured("neighbor_single_ring_gbps") > 90  # ring fine here
