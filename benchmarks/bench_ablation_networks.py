"""Ablation (sections 5.3 / 8.1): the second static network buys nothing.

Regenerates the sufficiency claim: with conflict-free or uniform
traffic, enabling Raw's second static network leaves throughput flat --
output-port contention binds, not ring bandwidth.
"""

import pytest

from repro.experiments import ablations


def test_second_network_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: ablations.run_second_network(quanta=3000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("permutation_speedup") == pytest.approx(1.0, abs=0.01)
    assert result.measured("uniform_speedup") == pytest.approx(1.0, abs=0.06)
