"""Kernel wall-clock throughput: how fast the simulator itself runs.

Unlike the other benches (which regenerate the paper's *simulated*
numbers), this one times the simulator: wall seconds, simulated
cycles/sec, and kernel events/sec per engine at the quick budgets, and
checks the recorded trajectory in ``BENCH_results.json`` against the
pinned pre-optimization baseline.  The full-budget trajectory is
maintained by ``python -m repro bench`` (see the README's Benchmarks
note); this pytest wrapper is the smoke-level entry point.
"""

import pytest

from repro import bench
from repro.experiments.common import ExperimentResult


def run_kernel_bench():
    report = bench.run_bench(mode="quick", repeats=2)
    result = ExperimentResult(
        name="kernel_bench",
        description="Simulator wall-clock throughput (quick budgets)",
    )
    for run in report["runs"]:
        result.add(
            run["engine"],
            round(run["wall_s"], 4),
            events_per_sec=(
                round(run["events_per_sec"]) if run["events_per_sec"] else None
            ),
            cycles_per_sec=round(run["cycles_per_sec"]),
            gbps=round(run["gbps"], 3),
        )
    return result, report


def test_kernel_bench(benchmark, record_table):
    result, report = benchmark.pedantic(
        run_kernel_bench, rounds=1, iterations=1
    )
    record_table(result)
    engines = {run["engine"]: run for run in report["runs"]}
    assert set(engines) == {"fabric", "router", "wordlevel"}
    for run in engines.values():
        assert run["wall_s"] > 0
        assert run["cycles_per_sec"] > 0
    # The wordlevel engine is the hot one: it must report kernel event
    # counts so events/sec regressions are visible.
    assert engines["wordlevel"]["kernel_events"] > 0
    # Results must stay bit-for-bit identical to the pre-optimization
    # kernel; the quick permutation budget delivers a pinned rate.
    assert engines["wordlevel"]["gbps"] == pytest.approx(24.95, rel=0.01)


def test_recorded_results_schema_valid():
    """The committed BENCH_results.json must satisfy the bench schema
    (the same check CI runs via ``python -m repro bench --check``)."""
    data = bench.load_results(bench.DEFAULT_RESULTS_PATH)
    assert bench.validate_results(data) == []
    speedups = data["kernel_bench"]["speedup_vs_baseline"]
    # The recorded full-budget trajectory: the optimized kernel must
    # hold at least a 3x wordlevel speedup over the seed baseline.
    assert speedups.get("wordlevel", 0.0) >= 3.0
