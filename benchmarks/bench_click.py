"""The Click baseline on its own: forwarding rate vs packet size.

The thesis plots a single 0.23 Gbps bar; this bench regenerates it and
fills in the full Click curve (per-packet bound at small sizes, memory
bound at large), the two-orders-of-magnitude gap the Raw router opens.
"""

import numpy as np
import pytest

from repro.baselines.click import standard_ip_router
from repro.experiments.common import ExperimentResult
from repro.experiments import paperdata
from repro.traffic.workload import PacketFactory


def run_click_curve(packets=1500):
    result = ExperimentResult(
        name="click_curve",
        description="Click modular router forwarding rate (700 MHz PC model)",
    )
    for size in (64, 128, 256, 512, 1024):
        rng = np.random.default_rng(0)
        factory = PacketFactory(4, rng)
        router = standard_ip_router(4)
        batch = [
            (i % 4, factory.make(i % 4, int(rng.integers(0, 4)), size))
            for i in range(packets)
        ]
        res = router.run_packets(batch)
        result.add(
            f"{size}B_gbps",
            res.gbps,
            paperdata.CLICK_GBPS if size == 64 else None,
            kpps=res.kpps,
        )
    return result


def test_click_baseline(benchmark, record_table):
    result = benchmark.pedantic(run_click_curve, rounds=1, iterations=1)
    record_table(result)
    assert result.measured("64B_gbps") == pytest.approx(0.23, rel=0.12)
    assert result.measured("1024B_gbps") < 2.5
