"""Section 8.6: fabric multicast (fanout splitting) vs ingress replication.

Regenerates the copies-per-cycle comparison behind the thesis's
multicast extension (and McKeown's +40% fanout-splitting figure).
"""

import pytest

from repro.experiments import multicast_ext


def test_multicast_fanout_splitting(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: multicast_ext.run(fanouts=(2, 3), quanta=3000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    assert result.measured("fabric_gain_F2") > 1.1
    assert result.measured("fabric_gain_F3") > 1.25
