"""Fig 7-1 (bottom): average throughput under uniform traffic vs Click.

Regenerates the bottom bar chart and the ~69% average-to-peak ratio of
section 7.3.
"""

import pytest

from repro.experiments import fig7_1, paperdata


def test_fig7_1_average(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: fig7_1.run_average(quanta=5000, click_packets=2000),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    for size, ref in paperdata.AVG_GBPS.items():
        assert result.measured(f"{size}B") == pytest.approx(ref, rel=0.16)
    assert result.measured("avg_to_peak_1024B") == pytest.approx(
        paperdata.AVG_TO_PEAK, abs=0.04
    )
